"""Client/server matrix-vector computation engine (§5.4, Figures 10-15).

A (sequential or parallel) Fortran/Multiblock-Parti *client* builds a
matrix and a stream of operand vectors; an HPF *server* program holds the
distributed matrix and performs the multiplies.  Meta-Chaos provides the
direct client<->server data paths:

- one schedule to copy the matrix (client -> server), used once;
- one schedule to copy a vector (client -> server); since the matrix is
  square and Meta-Chaos schedules are symmetric, the *same* schedule in
  reverse returns the result vector (server -> client) — the paper's
  "only two schedules must be computed".

Reported phases follow the figures:

- ``sched``   — computing the two schedules (client-side);
- ``matrix``  — sending the matrix (client-side);
- ``server``  — the HPF matrix-vector multiplies (server-side);
- ``vector``  — vector send + result receive, excluding server compute
  (client-side wait minus server compute, the paper's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockparti import BlockPartiArray
from repro.core import ScheduleMethod, SectionRegion, mc_compute_schedule, mc_new_set_of_regions
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.distrib.section import Section
from repro.hpf import HPFArray, distributed_matvec, local_matvec_time
from repro.vmachine import ALPHA_FARM_ATM, MachineProfile, ProgramSpec, run_programs
from repro.vmachine.timing import merge_timings

__all__ = ["MatvecTimings", "run_client_server_matvec"]

_SYNC_TAG = (1 << 21) + 9


def _sync(ctx, peer: str) -> None:
    """Align the two programs' logical clocks at a phase boundary, so the
    per-phase breakdown attributes wait time to the phase that caused it
    (the paper measures each component separately the same way)."""
    ic = ctx.peer(peer)
    ctx.comm.barrier()
    if ctx.rank == 0:
        ic.send(0, None, _SYNC_TAG)
        ic.recv(0, _SYNC_TAG)
    ctx.comm.barrier()


@dataclass
class MatvecTimings:
    """Phase breakdown of one client/server run, in ms."""

    sched_ms: float
    matrix_ms: float
    server_ms: float
    vector_ms: float
    nvectors: int
    #: modelled cost of doing all multiplies inside the client instead
    local_alternative_ms: float

    @property
    def total_ms(self) -> float:
        return self.sched_ms + self.matrix_ms + self.server_ms + self.vector_ms

    @property
    def speedup_vs_local(self) -> float:
        """Client-local compute time over the server-path total."""
        return self.local_alternative_ms / self.total_ms if self.total_ms else 0.0


def run_client_server_matvec(
    nclient: int,
    nserver: int,
    n: int = 512,
    nvectors: int = 1,
    profile: MachineProfile = ALPHA_FARM_ATM,
) -> MatvecTimings:
    """Run the full scenario and return the merged phase timings."""
    full_matrix = Section.full((n, n))
    full_vector = Section.full((n,))

    def client(ctx):
        comm = ctx.comm
        proc = comm.process
        M = BlockPartiArray.from_function(
            comm, (n, n), lambda i, j: 1.0 / (1.0 + i + 2.0 * j)
        )
        vec = BlockPartiArray.from_function(comm, (n,), lambda i: i + 1.0)
        result = BlockPartiArray.zeros(comm, (n,))
        universe = coupled_universe(ctx, "server", "src")
        with proc.timer.phase("sched"):
            mat_sched = mc_compute_schedule(
                universe,
                "blockparti", M, mc_new_set_of_regions(SectionRegion(full_matrix)),
                "hpf", None, None,
                ScheduleMethod.COOPERATION,
            )
            vec_sched = mc_compute_schedule(
                universe,
                "blockparti", vec, mc_new_set_of_regions(SectionRegion(full_vector)),
                "hpf", None, None,
                ScheduleMethod.COOPERATION,
            )
        mat_exchange = CoupledExchange(universe, mat_sched)
        vec_exchange = CoupledExchange(universe, vec_sched)
        with proc.timer.phase("matrix"):
            mat_exchange.push(M)
            _sync(ctx, "server")
        for k in range(nvectors):
            vec.local[:] = vec.local + float(k)  # a fresh operand each time
            with proc.timer.phase("client_vector"):
                vec_exchange.push(vec)
                vec_exchange.pull(result)
        return True

    def server(ctx):
        comm = ctx.comm
        proc = comm.process
        A = HPFArray.distribute(comm, (n, n), ("block", "*"))
        x = HPFArray.distribute(comm, (n,), ("block",))
        y = HPFArray.distribute(comm, (n,), ("block",))
        universe = coupled_universe(ctx, "client", "dst")
        with proc.timer.phase("sched"):
            mat_sched = mc_compute_schedule(
                universe,
                "blockparti", None, None,
                "hpf", A, mc_new_set_of_regions(SectionRegion(full_matrix)),
                ScheduleMethod.COOPERATION,
            )
            vec_sched = mc_compute_schedule(
                universe,
                "blockparti", None, None,
                "hpf", x, mc_new_set_of_regions(SectionRegion(full_vector)),
                ScheduleMethod.COOPERATION,
            )
        mat_exchange = CoupledExchange(universe, mat_sched)
        vec_exchange = CoupledExchange(universe, vec_sched)
        with proc.timer.phase("matrix"):
            mat_exchange.push(A)
            _sync(ctx, "client")
        for _ in range(nvectors):
            vec_exchange.push(x)
            with proc.timer.phase("server"):
                distributed_matvec(A, x, y)
            vec_exchange.pull(y)
        return True

    result = run_programs(
        [
            ProgramSpec("client", nclient, client),
            ProgramSpec("server", nserver, server),
        ],
        profile=profile,
    )
    merged = merge_timings(
        result["client"].timings + result["server"].timings, how="max"
    )
    server_ms = merged.get_ms("server")
    vector_ms = max(0.0, merged.get_ms("client_vector") - server_ms)
    # The client-local alternative: nvectors sequential n x n multiplies
    # spread over the client's processors.
    local_ms = local_matvec_time(n, n, profile) * nvectors / nclient * 1e3
    return MatvecTimings(
        sched_ms=merged.get_ms("sched"),
        matrix_ms=merged.get_ms("matrix"),
        server_ms=server_ms,
        vector_ms=vector_ms,
        nvectors=nvectors,
        local_alternative_ms=local_ms,
    )
