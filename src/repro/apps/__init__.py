"""The paper's application kernels.

- :mod:`repro.apps.meshes` — structured/unstructured mesh generation and
  the regular<->irregular interface mappings of Figure 1;
- :mod:`repro.apps.coupled` — the coupled structured+unstructured solver
  (§2, §5.1-5.2) in single-program and two-program variants, with the
  phase instrumentation Tables 1-4 report;
- :mod:`repro.apps.matvec_cs` — the client/server matrix-vector scenario
  (§5.4) behind Figures 10-15.
"""

from repro.apps.meshes import UnstructuredMesh, delaunay_mesh, grid_mesh, full_remap_mapping, interface_mapping
from repro.apps.coupled import (
    CoupledTimings,
    run_coupled_single_program,
    run_coupled_two_programs,
)
from repro.apps.matvec_cs import MatvecTimings, run_client_server_matvec

__all__ = [
    "UnstructuredMesh",
    "delaunay_mesh",
    "grid_mesh",
    "full_remap_mapping",
    "interface_mapping",
    "CoupledTimings",
    "run_coupled_single_program",
    "run_coupled_two_programs",
    "MatvecTimings",
    "run_client_server_matvec",
]
