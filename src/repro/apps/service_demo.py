"""Synthetic multi-tenant workload for the coupling service.

Shared by ``python -m repro serve`` and ``benchmarks/bench_service.py``:
a demo object server exporting one block-distributed vector per "shape
class", and a fleet of tenant sessions that each create an array, bind,
and run push/compute/pull iterations.  Tenants are assigned to shape
classes round-robin, so the number of *distinct* array signatures — and
therefore the cold/warm behaviour of the shared schedule cache — is a
direct parameter: ``shapes=1`` makes every tenant after the first a warm
cache hit, ``shapes=tenants`` makes every bind a cold collective build.
"""

from __future__ import annotations

from repro.dobj import ParallelObject
from repro.service import (
    ArraySpec,
    ServiceConfig,
    ServiceReport,
    TenantSpec,
    run_service_gateway,
    serve_service,
)
from repro.vmachine import ProgramSpec, run_programs

__all__ = ["DemoVectors", "demo_tenant", "run_service_demo"]


class DemoVectors(ParallelObject):
    """Server object: one exported HPF block vector per shape class."""

    def __init__(self, comm, sizes):
        from repro.hpf import HPFArray

        self.comm = comm
        self.vectors = {
            f"v{i}": HPFArray.distribute(comm, (n,), ("block",))
            for i, n in enumerate(sizes)
        }

    def export_array(self, attr):
        from repro.core import SectionRegion, mc_new_set_of_regions
        from repro.distrib.section import Section

        v = self.vectors[attr]  # KeyError -> failed bind, reported
        return (
            "hpf", v,
            mc_new_set_of_regions(SectionRegion(Section.full(v.global_shape))),
        )

    def total(self, attr):
        from repro.hpf import hpf_sum

        return hpf_sum(self.vectors[attr])

    def scale(self, attr, k):
        self.vectors[attr].local *= k
        return k


def demo_tenant(shape_attr: str, size: int, iterations: int, fill: float):
    """One tenant's session body: create, bind, iterate push/pull."""

    async def body(session):
        await session.create_array(
            "x", ArraySpec("blockparti", size, fill=("value", fill))
        )
        binding = await session.bind("vec", shape_attr, "x")
        total = 0.0
        for _ in range(iterations):
            await session.push(binding)
            total = await session.call("vec", "total", shape_attr)
            await session.pull(binding)
        await session.unbind(binding)
        await session.close()
        return total

    return body


def run_service_demo(
    tenants: int = 16,
    gateway_procs: int = 2,
    server_procs: int = 3,
    size: int = 64,
    iterations: int = 2,
    shapes: int = 1,
    policy: str = "ordered",
    reliability: bool = False,
    max_queue_depth: int = 1024,
    max_inflight_per_tenant: int = 8,
    schedule_cache_size: int | None = None,
    plan_cache_size: int | None = None,
    fault_plan=None,
    recorder=None,
) -> tuple[ServiceReport, dict, object]:
    """Run the demo fleet; returns (gateway report, server summary,
    coupled VM result — for metrics and the deterministic logical clock).

    ``shapes`` distinct vector lengths (``size``, ``size+8``, ...) are
    served; tenant *i* uses shape class ``i % shapes``.

    ``recorder`` records the whole fleet's message provenance (see
    :mod:`repro.replay`), making a wedged tenant session inspectable
    after the fact.  Caveat: gateway ranks schedule tenant coroutines on
    wall-clock-driven asyncio batching, so they are recordable and
    diffable but not *isolation-replayable*; server ranks are.
    """
    shapes = max(1, min(shapes, tenants))
    sizes = [size + 8 * i for i in range(shapes)]
    config = ServiceConfig(
        max_queue_depth=max_queue_depth,
        max_inflight_per_tenant=max_inflight_per_tenant,
        policy=policy,
        reliability=reliability,
        schedule_cache_size=schedule_cache_size,
        plan_cache_size=plan_cache_size,
    )

    def gateway(ctx):
        fleet = [
            TenantSpec(
                f"tenant{i}",
                demo_tenant(f"v{i % shapes}", sizes[i % shapes],
                            iterations, float(i % 7 + 1)),
            )
            for i in range(tenants)
        ]
        return run_service_gateway(ctx, "server", fleet, config)

    def server(ctx):
        return serve_service(
            ctx, "gateway", {"vec": DemoVectors(ctx.comm, sizes)}, config
        )

    result = run_programs(
        [
            ProgramSpec("gateway", gateway_procs, gateway),
            ProgramSpec("server", server_procs, server),
        ],
        faults=fault_plan,
        recorder=recorder,
    )
    report = result["gateway"].values[0]
    summary = result["server"].values[0]
    return report, summary, result
