"""Mesh generation and regular<->irregular interface mappings.

The paper's experiments couple a structured mesh (a 2-D array) with an
unstructured mesh (irregularly distributed node arrays accessed through
edge indirection arrays).  The authors used CFD meshes; we substitute
synthetic unstructured meshes with the same structural properties:

- :func:`delaunay_mesh` — Delaunay triangulation of random points (real
  unstructured connectivity, node degree ~6, edge count ~3x nodes);
- :func:`grid_mesh` — a triangulated grid (deterministic, for tests);
- :func:`full_remap_mapping` — the whole-mesh pointwise mapping used by
  the Table 2-4 remap experiments (every regular cell paired with one
  irregular node, optionally permuted);
- :func:`interface_mapping` — a boundary-strip mapping like Figure 1's
  ``Reg2Irreg`` arrays (only cells near the regular mesh's edge map to
  irregular nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "UnstructuredMesh",
    "delaunay_mesh",
    "grid_mesh",
    "full_remap_mapping",
    "interface_mapping",
]


@dataclass
class UnstructuredMesh:
    """Node coordinates plus edge endpoint lists (global node ids)."""

    coords: np.ndarray  # (n, 2)
    ia: np.ndarray      # (nedges,)
    ib: np.ndarray      # (nedges,)

    @property
    def npoints(self) -> int:
        return len(self.coords)

    @property
    def nedges(self) -> int:
        return len(self.ia)

    def validate(self) -> None:
        if self.ia.shape != self.ib.shape:
            raise ValueError("ia/ib length mismatch")
        for arr in (self.ia, self.ib):
            if len(arr) and (arr.min() < 0 or arr.max() >= self.npoints):
                raise ValueError("edge endpoint out of range")


def delaunay_mesh(npoints: int, seed: int = 0) -> UnstructuredMesh:
    """Delaunay triangulation of random points in the unit square."""
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    coords = rng.random((npoints, 2))
    tri = Delaunay(coords)
    # Unique undirected edges from the triangle list.
    s = tri.simplices
    edges = np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [2, 0]]])
    edges = np.sort(edges, axis=1)
    edges = np.unique(edges, axis=0)
    return UnstructuredMesh(
        coords=coords,
        ia=edges[:, 0].astype(np.int64),
        ib=edges[:, 1].astype(np.int64),
    )


def grid_mesh(rows: int, cols: int) -> UnstructuredMesh:
    """Triangulated structured grid (deterministic small test mesh)."""
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    coords = np.column_stack([ii.ravel() / max(rows - 1, 1), jj.ravel() / max(cols - 1, 1)])
    idx = np.arange(rows * cols).reshape(rows, cols)
    right = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    diag = np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()])
    edges = np.concatenate([right, down, diag])
    return UnstructuredMesh(
        coords=coords,
        ia=edges[:, 0].astype(np.int64),
        ib=edges[:, 1].astype(np.int64),
    )


def full_remap_mapping(
    shape: tuple[int, int], npoints: int, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole-mesh mapping: pair every regular cell with one irregular node.

    Returns ``(irreg, reg1, reg2)`` — the Figure 1 ``Reg2Irreg`` arrays:
    entry k maps unstructured node ``irreg[k]`` to structured cell
    ``(reg1[k], reg2[k])``.  Requires ``npoints == shape[0]*shape[1]``.
    With a ``seed``, the node side is permuted (a genuinely irregular
    correspondence); without, it is the row-major identity.
    """
    n0, n1 = shape
    if npoints != n0 * n1:
        raise ValueError("full remap needs npoints == rows*cols")
    k = np.arange(npoints, dtype=np.int64)
    irreg = k if seed is None else np.random.default_rng(seed).permutation(npoints)
    return irreg.astype(np.int64), (k // n1), (k % n1)


def interface_mapping(
    shape: tuple[int, int], npoints: int, strip: int = 1, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boundary-strip mapping: only regular cells within ``strip`` of the
    mesh edge are paired with (random, distinct) irregular nodes.

    This is the Figure-1-style physical scenario: the two meshes share
    only their interface.
    """
    n0, n1 = shape
    ii, jj = np.meshgrid(np.arange(n0), np.arange(n1), indexing="ij")
    on_strip = (
        (ii < strip) | (ii >= n0 - strip) | (jj < strip) | (jj >= n1 - strip)
    )
    reg1 = ii[on_strip].astype(np.int64)
    reg2 = jj[on_strip].astype(np.int64)
    m = len(reg1)
    if m > npoints:
        raise ValueError("interface larger than the irregular mesh")
    irreg = np.random.default_rng(seed).permutation(npoints)[:m].astype(np.int64)
    return irreg, reg1, reg2
