"""The coupled structured+unstructured mesh application (§2, §5.1-5.2).

Implements the paper's Figure 1 time-step loop:

1. sweep over the structured mesh (Multiblock Parti, ghost-cell fill);
2. remap structured -> unstructured across the interface mapping;
3. sweep over the unstructured mesh (Chaos inspector/executor edge loop);
4. remap back.

Sweeps are handled by each mesh's own specialized library; the remap (the
inter-library copy) is handled by Meta-Chaos (cooperation or duplication)
or — the Table 2 baseline — by Chaos alone after pointwise-wrapping the
regular mesh in a translation table.

Phase timings follow the paper's reporting:

- ``inspector``  — intra-mesh schedule building (ghost + edge), total;
- ``executor``   — both sweeps, accumulated over time-steps;
- ``sched``      — remap schedule building, total;
- ``copy``       — both remap copies, accumulated over time-steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.meshes import UnstructuredMesh
from repro.blockparti import BlockPartiArray, build_ghost_schedule, jacobi_sweep
from repro.chaos import (
    ChaosArray,
    EdgeSweep,
    TranslationTable,
    build_chaos_copy_schedule,
    rcb_owners,
)
from repro.chaos.partition import block_owners
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.distrib.section import Section
from repro.vmachine import (
    IBM_SP2,
    MachineProfile,
    ProgramSpec,
    VirtualMachine,
    run_programs,
)

__all__ = ["CoupledTimings", "run_coupled_single_program", "run_coupled_two_programs"]

#: remap backend names accepted by the runners
REMAP_BACKENDS = ("mc-coop", "mc-dup", "chaos")


@dataclass
class CoupledTimings:
    """Merged (slowest-rank) phase times of one coupled run, in ms."""

    inspector_ms: float
    executor_per_iter_ms: float
    sched_ms: float
    copy_per_iter_ms: float
    timesteps: int
    total_messages: int
    #: global checksum of the final mesh state (backend/P invariance proof)
    checksum: float = 0.0

    @classmethod
    def from_results(
        cls, timings, timesteps: int, total_messages: int, checksum: float = 0.0
    ) -> "CoupledTimings":
        return cls(
            inspector_ms=timings.get_ms("inspector"),
            executor_per_iter_ms=timings.get_ms("executor") / timesteps,
            sched_ms=timings.get_ms("sched"),
            copy_per_iter_ms=timings.get_ms("copy") / timesteps,
            timesteps=timesteps,
            total_messages=total_messages,
            checksum=checksum,
        )


_SYNC_TAG = (1 << 21) + 7


def _sync_programs(ctx, peer: str) -> None:
    """Align the two programs' logical clocks before a timed phase.

    Without this, the faster program's next timed phase absorbs the other
    program's unrelated preceding work (e.g. the irregular side's
    inspector) as blocked-receive wait time.  Rank 0s exchange a token;
    the intra-program barriers propagate the aligned clock.
    """
    ic = ctx.peer(peer)
    ctx.comm.barrier()
    if ctx.rank == 0:
        ic.send(0, None, _SYNC_TAG)
        ic.recv(0, _SYNC_TAG)
    ctx.comm.barrier()


def _regular_sor(mapping, shape):
    """Source SetOfRegions on the regular mesh for the remap mapping."""
    irreg, reg1, reg2 = mapping
    flat = reg1 * shape[1] + reg2
    n = shape[0] * shape[1]
    if len(flat) == n and np.array_equal(flat, np.arange(n)):
        # Whole-mesh row-major mapping: one regular section (the cheap,
        # compact description a Parti/HPF program would naturally use).
        return mc_new_set_of_regions(SectionRegion(Section.full(shape)))
    return mc_new_set_of_regions(IndexRegion(flat))


def _irregular_sor(mapping):
    irreg, _, _ = mapping
    return mc_new_set_of_regions(IndexRegion(irreg))


def run_coupled_single_program(
    nprocs: int,
    mesh_shape: tuple[int, int],
    mesh: UnstructuredMesh,
    mapping: tuple[np.ndarray, np.ndarray, np.ndarray],
    timesteps: int = 2,
    remap: str = "mc-coop",
    profile: MachineProfile = IBM_SP2,
    partition: str = "rcb",
) -> CoupledTimings:
    """Both meshes in one SPMD program (paper §5.1, Tables 1-2)."""
    if remap not in REMAP_BACKENDS:
        raise ValueError(f"remap must be one of {REMAP_BACKENDS}")
    irreg, reg1, reg2 = mapping

    def spmd(comm):
        proc = comm.process
        owners = (
            rcb_owners(mesh.coords, comm.size)
            if partition == "rcb"
            else block_owners(mesh.npoints, comm.size)
        )
        a = BlockPartiArray.from_function(
            comm, mesh_shape, lambda i, j: (i + 2.0 * j) / (i + j + 1.0)
        )
        x = ChaosArray.zeros(comm, owners)
        y = ChaosArray.like(x)
        # Computation follows the data: each edge runs on the owner of
        # its first endpoint, so intra-mesh communication is bounded by
        # the partition's edge cut (the standard Chaos arrangement).
        mine = np.flatnonzero(owners[mesh.ia] == comm.rank)

        with proc.timer.phase("inspector"):
            ghost = build_ghost_schedule(a)
            sweep = EdgeSweep(x, mesh.ia[mine], mesh.ib[mine])

        with proc.timer.phase("sched"):
            if remap.startswith("mc-"):
                method = (
                    ScheduleMethod.COOPERATION
                    if remap == "mc-coop"
                    else ScheduleMethod.DUPLICATION
                )
                sched = mc_compute_schedule(
                    comm,
                    "blockparti", a, _regular_sor(mapping, mesh_shape),
                    "chaos", x, _irregular_sor(mapping),
                    method,
                )
            else:
                # Chaos alone: the regular mesh first needs a pointwise
                # translation table (the memory/time overhead §5.1 notes).
                reg_table = TranslationTable.from_distribution(
                    a.dist, a.dist.size
                )
                flat = reg1 * mesh_shape[1] + reg2
                csched = build_chaos_copy_schedule(
                    comm, reg_table, flat, x.table, irreg
                )

        for _ in range(timesteps):
            with proc.timer.phase("executor"):
                jacobi_sweep(a, ghost)
            with proc.timer.phase("copy"):
                if remap.startswith("mc-"):
                    mc_copy(comm, sched, a, x)
                else:
                    csched.execute(a.local, x.local, comm)
            with proc.timer.phase("executor"):
                sweep.execute(x, y)
            with proc.timer.phase("copy"):
                if remap.startswith("mc-"):
                    mc_copy(comm, sched.reverse(), x, a)
                else:
                    csched.reverse().execute(x.local, a.local, comm)
        return comm.allreduce(
            float(a.local.sum() + x.local.sum() + y.local.sum()),
            lambda p, q: p + q,
        )

    result = VirtualMachine(nprocs, profile).run(spmd)
    return CoupledTimings.from_results(
        result.merged_timing,
        timesteps,
        int(result.total_stat("messages_sent")),
        checksum=float(result.values[0]),
    )


def run_coupled_two_programs(
    nprocs_reg: int,
    nprocs_irreg: int,
    mesh_shape: tuple[int, int],
    mesh: UnstructuredMesh,
    mapping: tuple[np.ndarray, np.ndarray, np.ndarray],
    timesteps: int = 2,
    profile: MachineProfile = IBM_SP2,
) -> CoupledTimings:
    """Each mesh in its own program (paper §5.2, Tables 3-4).

    The regular program (``Preg``) runs the structured sweep; the
    irregular program (``Pirreg``) runs the unstructured sweep; the remap
    crosses the inter-communicator with a cooperation-method Meta-Chaos
    schedule (duplication would ship a data-sized translation table —
    "very expensive", §5.2).
    """
    irreg_ids, reg1, reg2 = mapping

    def prog_reg(ctx):
        comm = ctx.comm
        proc = comm.process
        a = BlockPartiArray.from_function(
            comm, mesh_shape, lambda i, j: (i + 2.0 * j) / (i + j + 1.0)
        )
        with proc.timer.phase("inspector"):
            ghost = build_ghost_schedule(a)
        universe = coupled_universe(ctx, "irreg", "src")
        _sync_programs(ctx, "irreg")
        with proc.timer.phase("sched"):
            sched = mc_compute_schedule(
                universe,
                "blockparti", a, _regular_sor(mapping, mesh_shape),
                "chaos", None, None,
                ScheduleMethod.COOPERATION,
            )
        exchange = CoupledExchange(universe, sched)
        for _ in range(timesteps):
            with proc.timer.phase("executor"):
                jacobi_sweep(a, ghost)
            with proc.timer.phase("copy"):
                exchange.push(a)   # regular -> irregular
            with proc.timer.phase("copy"):
                exchange.pull(a)   # irregular -> regular
        return comm.allreduce(float(a.local.sum()), lambda p, q: p + q)

    def prog_irreg(ctx):
        comm = ctx.comm
        proc = comm.process
        owners = rcb_owners(mesh.coords, comm.size)
        x = ChaosArray.zeros(comm, owners)
        y = ChaosArray.like(x)
        mine = np.flatnonzero(owners[mesh.ia] == comm.rank)
        with proc.timer.phase("inspector"):
            sweep = EdgeSweep(x, mesh.ia[mine], mesh.ib[mine])
        universe = coupled_universe(ctx, "reg", "dst")
        _sync_programs(ctx, "reg")
        with proc.timer.phase("sched"):
            sched = mc_compute_schedule(
                universe,
                "blockparti", None, None,
                "chaos", x, _irregular_sor(mapping),
                ScheduleMethod.COOPERATION,
            )
        exchange = CoupledExchange(universe, sched)
        for _ in range(timesteps):
            with proc.timer.phase("copy"):
                exchange.push(x)
            with proc.timer.phase("executor"):
                sweep.execute(x, y)
            with proc.timer.phase("copy"):
                exchange.pull(x)
        return comm.allreduce(
            float(x.local.sum() + y.local.sum()), lambda p, q: p + q
        )

    result = run_programs(
        [
            ProgramSpec("reg", nprocs_reg, prog_reg),
            ProgramSpec("irreg", nprocs_irreg, prog_irreg),
        ],
        profile=profile,
    )
    from repro.vmachine.timing import merge_timings

    merged = merge_timings(
        result["reg"].timings + result["irreg"].timings, how="max"
    )
    msgs = int(
        result["reg"].total_stat("messages_sent")
        + result["irreg"].total_stat("messages_sent")
    )
    checksum = float(result["reg"].values[0] + result["irreg"].values[0])
    return CoupledTimings.from_results(merged, timesteps, msgs, checksum=checksum)
