"""repro.service — the high-throughput multi-tenant coupling service.

Front-end that multiplexes many concurrent client *sessions* onto one
SPMD server group over a batched generalization of the :mod:`repro.dobj`
protocol: an asyncio gateway hosts the tenant tasks, a collective
dispatch scheduler batches independent operations from different tenants
into fused rounds, and a shared cross-tenant cache hierarchy
(schedules → fused plans → lowered move programs) makes the marginal
cost of the N-th tenant with a familiar array signature approach zero.

Typical topology (two programs under :func:`repro.vmachine.program.
run_programs`)::

    def gateway(ctx):
        return run_service_gateway(ctx, "server", tenants, config)

    def server(ctx):
        return serve_service(ctx, "gateway", {"sim": SimObject(ctx.comm)},
                             config)

See ``docs/MODEL.md`` §12 for the model and ``docs/API.md`` for the full
surface.
"""

from repro.service.admission import (
    AdmissionControl,
    AdmissionDecision,
    ServiceBusyError,
)
from repro.service.cache import ServiceCache, array_signature, bind_key
from repro.service.frontend import (
    ServiceReport,
    TenantReport,
    run_service_gateway,
)
from repro.service.protocol import (
    PULL,
    PUSH,
    TAG_SERVICE,
    ServiceConfig,
)
from repro.service.server import serve_service
from repro.service.session import (
    ArraySpec,
    RemoteBinding,
    RemoteServiceError,
    Session,
    SessionClosedError,
    TenantEvictedError,
    TenantSpec,
)

__all__ = [
    "AdmissionControl",
    "AdmissionDecision",
    "ArraySpec",
    "PULL",
    "PUSH",
    "RemoteBinding",
    "RemoteServiceError",
    "ServiceBusyError",
    "ServiceCache",
    "ServiceConfig",
    "ServiceReport",
    "Session",
    "SessionClosedError",
    "TAG_SERVICE",
    "TenantEvictedError",
    "TenantReport",
    "TenantSpec",
    "array_signature",
    "bind_key",
    "run_service_gateway",
    "serve_service",
]
