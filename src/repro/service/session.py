"""Tenant sessions: the async client API of the coupling service.

A *tenant* is one simulated coupled client: an ``async`` function run as
a task on the gateway's rank 0, holding distributed arrays that live on
the gateway program's ranks and exchanging data with the server's
parallel objects through bindings.  Every session operation enqueues one
operation (subject to admission control) and awaits its future; the
dispatch scheduler drains the queues in collective batch rounds.

Arrays are declared through :class:`ArraySpec` — a deterministic recipe
(library, length, dtype, fill, region) that every gateway rank
materializes identically during the round that carries the ``create``
op.  That is what lets thousands of tenants exist inside one SPMD
program: tenant state is replicated *by construction*, never shipped.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

import numpy as np

from repro.core import mc_new_set_of_regions
from repro.core.region import IndexRegion, SectionRegion
from repro.core.setofregions import SetOfRegions
from repro.distrib.section import Section
from repro.dobj.protocol import Reply
from repro.service.admission import BUSY, ServiceBusyError
from repro.service.protocol import (
    PULL,
    PUSH,
    BindOp,
    CallOp,
    CreateOp,
    DisconnectOp,
    GatherOp,
    MoveOp,
    UnbindOp,
)

__all__ = [
    "ArraySpec",
    "TenantSpec",
    "Session",
    "RemoteBinding",
    "SessionClosedError",
    "TenantEvictedError",
    "materialize_array",
    "make_sor",
]


class SessionClosedError(RuntimeError):
    """Operation submitted on a closed (or evicted) session."""


class TenantEvictedError(RuntimeError):
    """The session was evicted (task failure or service shutdown) while
    this operation was queued or in flight."""


@dataclass(frozen=True)
class ArraySpec:
    """Deterministic recipe for a tenant-owned distributed 1-D array.

    ``fill`` is one of ``("zeros",)``, ``("value", v)``, ``("arange",)``
    or ``("rng", seed)``; ``region`` — the binding region over the array
    — is ``("full",)``, ``("slice", start, stop, step)``, ``("perm",
    seed)`` or ``("indices", (...))``.  ``owners`` shapes the chaos
    library's irregular ownership: ``("stride", k)`` assigns global
    element ``i`` to rank ``(i * k) % size``; ``("rng", seed)`` draws
    ownership uniformly.
    """

    lib: str                       # "blockparti" | "hpf" | "chaos"
    n: int
    dtype: str = "float64"
    fill: tuple = ("zeros",)
    region: tuple = ("full",)
    owners: tuple = ("stride", 1)  # chaos only

    @property
    def nbytes(self) -> int:
        return 64

    def global_values(self) -> np.ndarray:
        """The replicated global initial value (deterministic)."""
        dtype = np.dtype(self.dtype)
        kind = self.fill[0]
        if kind == "zeros":
            return np.zeros(self.n, dtype=dtype)
        if kind == "value":
            return np.full(self.n, self.fill[1], dtype=dtype)
        if kind == "arange":
            return np.arange(self.n, dtype=dtype)
        if kind == "rng":
            return np.random.default_rng(self.fill[1]).random(self.n).astype(dtype)
        raise ValueError(f"unknown fill {self.fill!r}")


def make_sor(region: tuple, n: int) -> SetOfRegions:
    """Materialize a region spec over a length-``n`` index space."""
    kind = region[0]
    if kind == "full":
        return mc_new_set_of_regions(SectionRegion(Section.full((n,))))
    if kind == "slice":
        _, start, stop, step = region
        return mc_new_set_of_regions(
            SectionRegion(Section((start,), (stop,), (step,)))
        )
    if kind == "perm":
        perm = np.random.default_rng(region[1]).permutation(n)
        return mc_new_set_of_regions(IndexRegion(perm))
    if kind == "indices":
        return mc_new_set_of_regions(
            IndexRegion(np.asarray(region[1], dtype=np.int64))
        )
    raise ValueError(f"unknown region spec {region!r}")


def materialize_array(spec: ArraySpec, comm) -> Any:
    """Build the rank-local piece of a tenant array (collective)."""
    full = spec.global_values()
    if spec.lib == "blockparti":
        from repro.blockparti import BlockPartiArray

        return BlockPartiArray.from_global(comm, full)
    if spec.lib == "hpf":
        from repro.hpf import HPFArray

        return HPFArray.from_global(comm, full, ("block",))
    if spec.lib == "chaos":
        from repro.chaos import ChaosArray

        kind = spec.owners[0]
        if kind == "stride":
            owners = (np.arange(spec.n) * spec.owners[1]) % comm.size
        elif kind == "rng":
            owners = np.random.default_rng(spec.owners[1]).integers(
                0, comm.size, spec.n
            )
        else:
            raise ValueError(f"unknown owners spec {spec.owners!r}")
        return ChaosArray.from_global(comm, full, owners)
    raise ValueError(f"unsupported tenant library {spec.lib!r}")


@dataclass(frozen=True)
class TenantSpec:
    """One simulated coupled client of the service."""

    name: str
    fn: Callable[["Session"], Awaitable[Any]]


@dataclass
class RemoteBinding:
    """Client half of one tenant<->object bulk-data path."""

    slot: int
    obj: str
    attr: str
    array_name: str
    signature: tuple
    closed: bool = False


@dataclass
class _Pending:
    op: Any
    future: asyncio.Future
    submitted_at: float


@dataclass
class SessionStats:
    ops_ok: int = 0
    ops_failed: int = 0
    ops_shed: int = 0
    #: wall-clock seconds from submission to resolution, per resolved op
    latencies: list = field(default_factory=list)


class Session:
    """The async API one tenant task drives (gateway rank 0 only)."""

    def __init__(self, tenant_id: int, name: str, core):
        self.tenant_id = tenant_id
        self.name = name
        self._core = core  # the gateway dispatcher (duck-typed)
        self.queue: list[_Pending] = []
        self.inflight = 0
        self.closed = False
        self.evicted = False
        self.arrays: dict[str, ArraySpec] = {}
        self.bindings: dict[int, RemoteBinding] = {}
        self.stats = SessionStats()

    # -- plumbing -----------------------------------------------------------

    def _submit(self, op, system: bool = False) -> asyncio.Future:
        if self.closed and not system:
            raise SessionClosedError(f"session {self.name!r} is closed")
        fut: asyncio.Future = self._core.loop.create_future()
        if system:
            self._core.admission.enqueue_system()
        else:
            decision = self._core.admission.try_admit(self.inflight)
            if not decision.admitted:
                self.stats.ops_shed += 1
                fut.set_result(Reply(ok=False, error=BUSY))
                return fut
        self.inflight += 1
        self.queue.append(_Pending(op, fut, time.perf_counter()))
        self._core.notify_work()
        return fut

    async def _transact(self, op) -> Reply:
        t0 = time.perf_counter()
        reply: Reply = await self._submit(op)
        if reply.error == BUSY and not reply.ok:
            raise ServiceBusyError("submission shed by admission control")
        self.stats.latencies.append(time.perf_counter() - t0)
        if not reply.ok:
            self.stats.ops_failed += 1
            raise RemoteServiceError(reply.error)
        self.stats.ops_ok += 1
        return reply

    # -- the tenant-facing operations ---------------------------------------

    async def create_array(self, name: str, spec: ArraySpec) -> None:
        """Materialize a tenant-owned distributed array (gateway-local)."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already exists in this session")
        await self._transact(CreateOp(self.tenant_id, name, spec))
        self.arrays[name] = spec

    async def call(self, obj: str, method: str, *args: Any) -> Any:
        """Invoke an SPMD method on a server object; replicated result."""
        reply = await self._transact(
            CallOp(self.tenant_id, obj, method, tuple(args))
        )
        return reply.value

    async def call_oneway(self, obj: str, method: str, *args: Any) -> None:
        """Fire-and-forget invocation: resolves when dispatched, carries
        no result and reports no server-side errors."""
        await self._transact(
            CallOp(self.tenant_id, obj, method, tuple(args), oneway=True)
        )

    async def bind(self, obj: str, attr: str, array_name: str) -> RemoteBinding:
        """Establish a bulk-data path from a session array to an export."""
        spec = self._array(array_name)
        signature = self._core.signature_of(self.tenant_id, array_name, spec)
        client_hit = self._core.cache_would_hit(obj, attr, signature)
        reply = await self._transact(
            BindOp(self.tenant_id, obj, attr, array_name, signature, client_hit)
        )
        binding = RemoteBinding(
            slot=reply.binding, obj=obj, attr=attr,
            array_name=array_name, signature=signature,
        )
        self.bindings[binding.slot] = binding
        return binding

    async def push(self, binding: RemoteBinding) -> None:
        """Copy the session array into the bound object array."""
        self._check_binding(binding, PUSH)
        await self._transact(MoveOp(self.tenant_id, binding.slot, PUSH))

    async def pull(self, binding: RemoteBinding) -> None:
        """Copy the bound object array back into the session array."""
        self._check_binding(binding, PULL)
        await self._transact(MoveOp(self.tenant_id, binding.slot, PULL))

    async def unbind(self, binding: RemoteBinding) -> None:
        """Release the binding slot on both programs for reuse."""
        if binding.closed:
            return
        await self._transact(UnbindOp(self.tenant_id, binding.slot))
        binding.closed = True
        self.bindings.pop(binding.slot, None)

    async def gather(self, array_name: str) -> np.ndarray | None:
        """The session array's replicated global value (for verification)."""
        self._array(array_name)
        reply = await self._transact(GatherOp(self.tenant_id, array_name))
        return reply.value

    async def close(self) -> None:
        """End the session: release every binding slot, then refuse ops."""
        if self.closed:
            return
        self.closed = True
        await self._submit(DisconnectOp(self.tenant_id), system=True)

    # -- helpers ------------------------------------------------------------

    def _array(self, name: str) -> ArraySpec:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(
                f"session {self.name!r} has no array {name!r}; "
                f"arrays: {sorted(self.arrays)}"
            ) from None

    def _check_binding(self, binding: RemoteBinding, op: str) -> None:
        if binding.closed:
            raise RuntimeError(
                f"cannot {op} on closed binding {binding.slot} "
                f"({binding.obj}.{binding.attr})"
            )


class RemoteServiceError(RuntimeError):
    """A server-side failure, re-raised in the tenant task."""
