"""Server side of the coupling service: batched rounds over dobj objects.

:func:`serve_service` is the server program's body — the multi-tenant
generalization of :func:`repro.dobj.server.serve_objects`.  It serves the
same :class:`~repro.dobj.server.ParallelObject` instances, but the unit
of control traffic is one :class:`~repro.service.protocol.ServiceBatch`
per dispatch round instead of one request, and all of a round's bulk
transfers in one direction fuse into a single
:class:`~repro.core.plan.MovePlan` message per processor pair.

Round handling mirrors the gateway's canonical order exactly (slot
acquisition for granted binds first, then batch order, then pushes, then
pulls — see :mod:`repro.service.dispatch`), because the two programs'
slot tables, binding tables and caches are *replicas coordinated only by
the op stream*: as long as both sides apply the same deterministic rules
to the same ops, no state ever needs to ride the wire.

The bind negotiation is the one extra round trip: rank 0 validates each
bind locally, previews the slot it will get, peeks its shared schedule
cache, and answers a :class:`~repro.service.protocol.BindAck` *before*
any collective work — so a failed export never strands the gateway in a
half-started schedule build, and a double cache hit (both programs hold
the schedule) skips the collective build entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coupling import coupled_universe
from repro.core.datamove import data_move_recv, data_move_send
from repro.core.plan import plan_move_recv, plan_move_send
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import CommSchedule, ScheduleMethod, build_schedule
from repro.dobj.protocol import Reply, SlotTable
from repro.dobj.server import ParallelObject, _lookup
from repro.service.cache import ServiceCache, bind_key
from repro.service.protocol import (
    PULL,
    PUSH,
    TAG_SERVICE,
    BatchReply,
    BindAck,
    BindGrant,
    BindOp,
    CallOp,
    DisconnectOp,
    MoveOp,
    ServiceBatch,
    ServiceConfig,
    ShutdownOp,
    UnbindOp,
)
from repro.vmachine.faults import RankLostError
from repro.vmachine.program import ProgramContext

__all__ = ["serve_service"]


@dataclass
class _ServedBinding:
    """Server half of one tenant binding (slot-indexed)."""

    slot: int
    tenant: int
    key: tuple
    schedule: CommSchedule
    array: object  # the exported array's rank-local piece


def serve_service(
    ctx: ProgramContext,
    gateway: str,
    objects: dict[str, ParallelObject],
    config: ServiceConfig | None = None,
) -> dict:
    """Serve batched multi-tenant rounds until the gateway shuts down.

    Collective over the server program.  Returns a summary dict
    (rounds, ops served, cache counters) for monitoring and tests.
    """
    config = config or ServiceConfig()
    comm = ctx.comm
    ic = ctx.peer(gateway)
    policy = ExecutorPolicy.coerce(config.policy)
    universe = coupled_universe(ctx, gateway, "dst")
    if config.reliability:
        universe.enable_reliability()
    metrics = comm.process.metrics
    cache = ServiceCache(
        schedule_maxsize=config.schedule_cache_size,
        plan_maxsize=config.plan_cache_size,
        metrics=metrics,
    )
    slots = SlotTable()
    bindings: dict[int, _ServedBinding] = {}
    rounds = 0
    ops_served = 0
    peer_lost = ""

    while True:
        msg = None
        if comm.rank == 0:
            try:
                batch = ic.recv(0, TAG_SERVICE, timeout=config.deadline_s)
            except (RankLostError, TimeoutError) as exc:
                msg = ("lost", f"{type(exc).__name__}: {exc}")
            else:
                grants = ()
                if batch.has_binds:
                    grants = _grant_binds(batch, objects, cache, slots)
                    ic.send(0, BindAck(batch.seq, grants), TAG_SERVICE)
                msg = ("round", batch, grants)
        msg = comm.bcast(msg, root=0)

        if msg[0] == "lost":
            metrics.incr("svc_peer_lost")
            peer_lost = msg[1]
            break
        _, batch, grants = msg
        rounds += 1
        metrics.incr("svc_rounds")
        replies = _execute_batch(
            ctx, universe, policy, config, objects, cache, slots, bindings,
            batch, grants,
        )
        ops_served += len(batch.ops) - (1 if batch.shutdown else 0)
        if comm.rank == 0:
            counters = cache.snapshot()
            counters["bindings_live"] = len(bindings)
            counters["slot_high_water"] = slots.high_water
            ic.send(
                0, BatchReply(batch.seq, tuple(replies), counters), TAG_SERVICE
            )
        if batch.shutdown:
            break

    summary = cache.snapshot()
    summary.update(cache.program_stats())
    summary["rounds"] = rounds
    summary["ops_served"] = ops_served
    summary["slot_high_water"] = slots.high_water
    summary["bindings_live"] = len(bindings)
    if peer_lost:
        summary["peer_lost"] = peer_lost
    return summary


def _grant_binds(
    batch: ServiceBatch,
    objects: dict[str, ParallelObject],
    cache: ServiceCache,
    slots: SlotTable,
) -> tuple:
    """Rank 0's bind pre-pass: validate, preview slots, consult the cache.

    Pure with respect to the slot table and the cache — every mutation
    waits for the collective phase, so the previewed ids are exactly the
    ones both programs will acquire there (in batch order, before any
    unbind in the same round frees a slot).
    """
    bind_ops = [op for op in batch.ops if isinstance(op, BindOp)]
    previewed = iter(slots.preview(len(bind_ops)))
    grants = []
    #: keys already granted a build earlier in THIS round — by the time a
    #: later identical bind executes, both programs have stored the
    #: schedule (binds run in batch order on both sides), so duplicate
    #: signatures in one round pay the collective build exactly once.
    building: set = set()
    for op in bind_ops:
        try:
            obj = _lookup(objects, op.obj)
            obj.export_array(op.attr)  # raises KeyError for unknown attrs
        except Exception as exc:  # noqa: BLE001 - reported to the tenant
            grants.append(
                BindGrant(op.tenant, ok=False,
                          error=f"{type(exc).__name__}: {exc}")
            )
            continue
        key = bind_key(op.obj, op.attr, op.signature)
        if key in building:
            need_build = False
        else:
            need_build = not (
                op.client_hit and cache.peek_schedule(key)
            )
            if need_build:
                building.add(key)
        grants.append(
            BindGrant(
                op.tenant,
                ok=True,
                slot=next(previewed),
                need_build=need_build,
            )
        )
    return tuple(grants)


def _execute_batch(
    ctx,
    universe,
    policy: ExecutorPolicy,
    config: ServiceConfig,
    objects: dict[str, ParallelObject],
    cache: ServiceCache,
    slots: SlotTable,
    bindings: dict[int, _ServedBinding],
    batch: ServiceBatch,
    grants: tuple,
) -> list[Reply]:
    """Execute one round collectively; replies in server-op order
    (oneway calls produce none)."""
    comm = ctx.comm
    metrics = comm.process.metrics

    # Phase 1: slot acquisition for granted binds, in batch order.
    grant_of: dict[int, BindGrant] = {}
    it = iter(grants)
    for i, op in enumerate(batch.ops):
        if isinstance(op, BindOp):
            grant = next(it)
            grant_of[i] = grant
            if grant.ok:
                slot = slots.acquire()
                if slot != grant.slot:
                    raise RuntimeError(
                        f"server slot table diverged from its own preview: "
                        f"acquired {slot}, granted {grant.slot}"
                    )

    # Phase 2: batch order.
    replies: list[Reply] = []
    pushes: list[MoveOp] = []
    pulls: list[MoveOp] = []
    for i, op in enumerate(batch.ops):
        if isinstance(op, CallOp):
            if op.oneway:
                # Execute, never reply (see serve_objects): failures are
                # counted, not reported — there is no reply slot to fill.
                try:
                    obj = _lookup(objects, op.obj)
                    if not obj._callable(op.method):
                        raise AttributeError(op.method)
                    getattr(obj, op.method)(*op.args)
                except Exception:  # noqa: BLE001 - deliberately silent
                    metrics.incr("svc_oneway_errors")
                continue
            try:
                obj = _lookup(objects, op.obj)
                if not obj._callable(op.method):
                    raise AttributeError(
                        f"object {op.obj!r} has no remote method "
                        f"{op.method!r}"
                    )
                value = getattr(obj, op.method)(*op.args)
                replies.append(Reply(ok=True, value=value))
            except Exception as exc:  # noqa: BLE001 - reported to the tenant
                replies.append(
                    Reply(ok=False, error=f"{type(exc).__name__}: {exc}")
                )

        elif isinstance(op, BindOp):
            grant = grant_of[i]
            if not grant.ok:
                replies.append(Reply(ok=False, error=grant.error))
                continue
            lib, array, sor = _lookup(objects, op.obj).export_array(op.attr)
            key = bind_key(op.obj, op.attr, op.signature)

            def build():
                sched = build_schedule(
                    universe,
                    lib, None, None,  # source side lives in the gateway
                    lib, array, sor,
                    method=ScheduleMethod.COOPERATION,
                    policy=policy,
                )
                cache.store_schedule(key, sched)
                return sched

            if grant.need_build:
                cache.note_build(key)
                sched = build()
            else:
                sched = cache.lookup_schedule(key)
                if sched is None:
                    # Evicted since the grant pre-pass peeked (cache
                    # smaller than one round's distinct keys).  The
                    # gateway's replica cache misses identically and
                    # joins this collective rebuild — see dispatch.py.
                    sched = build()
            bindings[grant.slot] = _ServedBinding(
                slot=grant.slot, tenant=op.tenant, key=key,
                schedule=sched, array=array,
            )
            replies.append(Reply(ok=True, binding=grant.slot))

        elif isinstance(op, UnbindOp):
            binding = bindings.pop(op.slot, None)
            if binding is None:
                replies.append(
                    Reply(ok=False,
                          error=f"KeyError: binding {op.slot} is not live")
                )
            else:
                slots.release(op.slot)
                replies.append(Reply(ok=True))

        elif isinstance(op, MoveOp):
            if op.slot not in bindings:
                replies.append(
                    Reply(ok=False,
                          error=f"KeyError: binding {op.slot} is not live")
                )
                continue
            (pushes if op.direction == PUSH else pulls).append(op)
            replies.append(Reply(ok=True))

        elif isinstance(op, DisconnectOp):
            for slot in sorted(
                s for s, b in bindings.items() if b.tenant == op.tenant
            ):
                del bindings[slot]
                slots.release(slot)
            replies.append(Reply(ok=True))

        elif isinstance(op, ShutdownOp):
            replies.append(Reply(ok=True))

        else:
            replies.append(
                Reply(ok=False, error=f"unknown op {type(op).__name__}")
            )

    # Phases 3-4: fused bulk transfers (mirror of the gateway's).
    _execute_moves(universe, policy, config, cache, bindings, pushes, PUSH)
    _execute_moves(universe, policy, config, cache, bindings, pulls, PULL)
    metrics.incr("svc_ops", len(batch.ops))
    return replies


def _execute_moves(
    universe,
    policy: ExecutorPolicy,
    config: ServiceConfig,
    cache: ServiceCache,
    bindings: dict[int, _ServedBinding],
    ops: list[MoveOp],
    direction: str,
) -> None:
    if not ops:
        return
    group = [bindings[op.slot] for op in ops]
    arrays = [b.array for b in group]
    keys = [b.key for b in group]
    deadline = config.deadline_s
    universe.process.metrics.incr("svc_moves", len(ops))
    if direction == PUSH:
        # Forward schedule: gateway sends, this program receives.
        if len(ops) == 1:
            data_move_recv(group[0].schedule, arrays[0], universe,
                           policy=policy, timeout=deadline)
            return
        plan = cache.plan_for(PUSH, keys, [b.schedule for b in group])
        plan_move_recv(plan, arrays, universe, policy=policy,
                       timeout=deadline)
        return
    runiverse = universe.reversed()
    if len(ops) == 1:
        data_move_send(group[0].schedule.reverse(), arrays[0], runiverse,
                       policy=policy, timeout=deadline)
        return
    plan = cache.plan_for(
        PULL, keys, lambda: [b.schedule.reverse() for b in group]
    )
    plan_move_send(plan, arrays, runiverse, policy=policy, timeout=deadline)
