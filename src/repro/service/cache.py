"""Shared cross-tenant cache hierarchy: schedules → plans → programs.

Every expensive artifact of the coupling service is a deterministic
function of canonical content signatures:

- a **CommSchedule** depends on ``(object, attribute, client signature)``
  — where the client signature is ``(lib, distribution, region-set,
  dtype)`` — because the server's export for ``(object, attribute)`` is
  stable for the service's lifetime;
- a **MovePlan** depends on the ordered tuple of member schedule keys and
  the transfer direction;
- the **MovePrograms** behind each schedule half are memoized on the
  half's RunList (:func:`repro.core.dataplane.compile_offsets`), so any
  two tenants whose bindings share a cached schedule share its lowered
  programs for free.

So one cache per rank serves *every* tenant: the first tenant with a
given signature pays the collective schedule build, plan fusion and
program lowering; all later tenants hit.  Keys are computed locally and
deterministically, so all ranks of a program hit or miss together —
hit/miss/eviction counters are mirrored into the rank's
:class:`~repro.observe.metrics.MetricsRegistry` under the unified cache
namespace (``cache_svc_*`` — see the metrics module docstring) and
surface through ``SPMDResult.stats`` like every other counter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.cache import dist_key, sor_key
from repro.core.plan import MovePlan, compile_plan
from repro.core.registry import get_adapter
from repro.core.schedule import CommSchedule
from repro.core.setofregions import SetOfRegions

__all__ = ["ServiceCache", "array_signature", "bind_key"]


def array_signature(lib: str, array: Any, sor: SetOfRegions) -> tuple:
    """Canonical ``(lib, distribution, region-set, dtype)`` content key.

    Deterministic and cheap after first use (irregular distributions and
    index regions cache their content digests on the object), identical
    on every rank — the currency of the service's shared caches and of
    the bind negotiation on the wire.
    """
    adapter = get_adapter(lib)
    handle = adapter.resolve_handle(array)
    dtype = np.dtype(adapter.local_data(handle).dtype)
    return (lib, dist_key(adapter.dist_of(handle)), sor_key(sor), dtype.str)


def bind_key(obj: str, attr: str, signature: tuple) -> tuple:
    """Schedule-cache key of one binding request."""
    return ("bind", obj, attr, signature)


class ServiceCache:
    """One rank's shared cross-tenant cache (schedule + plan layers).

    Bounded-LRU on both layers; evicting a schedule entry invalidates
    every plan fused over it (the plan key embeds its member keys), so a
    later plan request recompiles against the freshly rebuilt member.
    """

    def __init__(
        self,
        schedule_maxsize: int | None = None,
        plan_maxsize: int | None = None,
        metrics=None,
    ):
        for name, v in (("schedule_maxsize", schedule_maxsize),
                        ("plan_maxsize", plan_maxsize)):
            if v is not None and v < 1:
                raise ValueError(f"{name} must be a positive integer or None")
        self.schedule_maxsize = schedule_maxsize
        self.plan_maxsize = plan_maxsize
        self._schedules: OrderedDict[tuple, CommSchedule] = OrderedDict()
        self._plans: OrderedDict[tuple, MovePlan] = OrderedDict()
        #: optional MetricsRegistry mirror (set by the service loops)
        self.metrics = metrics
        self.counters: dict[str, int] = {
            "schedule_hits": 0,
            "schedule_misses": 0,
            "schedule_evictions": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "plan_evictions": 0,
            "plan_invalidations": 0,
            "schedule_forced_rebuilds": 0,
        }

    # -- counters -----------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.metrics is not None:
            self.metrics.incr(f"cache_svc_{name}", amount)

    def snapshot(self) -> dict[str, int]:
        """Copy of the counters plus current layer sizes."""
        out = dict(self.counters)
        out["schedule_entries"] = len(self._schedules)
        out["plan_entries"] = len(self._plans)
        return out

    # -- schedule layer -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._schedules)

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    def peek_schedule(self, key: tuple) -> bool:
        """Would ``key`` hit?  No counter movement, no LRU touch — the
        bind negotiation asks before committing to an answer."""
        return key in self._schedules

    def lookup_schedule(self, key: tuple) -> CommSchedule | None:
        """Hit (refreshing recency) or miss; counters move either way."""
        hit = self._schedules.get(key)
        if hit is not None:
            self._bump("schedule_hits")
            self._schedules.move_to_end(key)
            return hit
        self._bump("schedule_misses")
        return None

    def note_build(self, key: tuple) -> None:
        """Account a negotiated rebuild: the bind negotiation decided the
        collective build must run (at least one side missed), so whatever
        this side's cache held is moot.  Counted as a miss; when this side
        *did* hold the schedule, additionally as a forced rebuild — the
        cost of keeping two independent cache hierarchies coherent."""
        if self.peek_schedule(key):
            self._bump("schedule_forced_rebuilds")
        self._bump("schedule_misses")

    def store_schedule(self, key: tuple, sched: CommSchedule) -> None:
        self._schedules[key] = sched
        self._schedules.move_to_end(key)
        if self.schedule_maxsize is None:
            return
        while len(self._schedules) > self.schedule_maxsize:
            evicted, _ = self._schedules.popitem(last=False)
            self._bump("schedule_evictions")
            stale = [pk for pk in self._plans if evicted in pk[1]]
            for pk in stale:
                del self._plans[pk]
                self._bump("plan_invalidations")

    # -- plan layer ---------------------------------------------------------

    def plan_for(
        self,
        direction: str,
        member_keys: Sequence[tuple],
        schedules: Callable[[], Sequence[CommSchedule]] | Sequence[CommSchedule],
    ) -> MovePlan:
        """The fused plan for an ordered group of cached schedules.

        ``member_keys`` are the members' schedule-cache keys (they embed
        the direction-independent content; ``direction`` separates the
        push plan from the pull plan, whose member schedules are the
        reverses).  ``schedules`` may be a callable so the reverse
        schedules are only materialized on a miss.
        """
        key = (direction, tuple(member_keys))
        hit = self._plans.get(key)
        if hit is not None:
            self._bump("plan_hits")
            self._plans.move_to_end(key)
            return hit
        self._bump("plan_misses")
        members = schedules() if callable(schedules) else schedules
        plan = compile_plan(list(members))
        self._plans[key] = plan
        if self.plan_maxsize is not None:
            while len(self._plans) > self.plan_maxsize:
                self._plans.popitem(last=False)
                self._bump("plan_evictions")
        return plan

    # -- program layer (derived view) ---------------------------------------

    def program_stats(self) -> dict[str, int]:
        """Lowering state of the MovePrograms behind the cached schedules.

        The program layer lives on the RunList halves themselves
        (memoized by :func:`repro.core.dataplane.compile_offsets` at
        first execution), so it needs no storage here — this walks the
        cached schedules and reports how many halves have been lowered.
        Shared halves (e.g. a schedule and its reverse inside a plan)
        count once: the memo slot *is* the dedup.
        """
        seen: set[int] = set()
        total = lowered = 0
        for sched in self._schedules.values():
            for half in (*sched.sends.values(), *sched.recvs.values()):
                if id(half) in seen:
                    continue
                seen.add(id(half))
                total += 1
                if getattr(half, "_program", None) is not None:
                    lowered += 1
        return {"halves": total, "halves_lowered": lowered}
