"""Collective round execution on the gateway program's ranks.

One dispatch *round* is the unit of collective work: the gateway's rank 0
seals a batch (at most one operation per tenant session), negotiates the
bind phase with the server, and broadcasts a :class:`Round` to the other
gateway ranks; every gateway rank then executes the identical round
through :func:`execute_round` while the server program executes its
mirror image — so the collective calls (schedule builds, fused moves,
gathers) line up pairwise without any per-rank coordination beyond the
one broadcast.

Execution order within a round is canonical and shared with the server:

1. **slot acquisition** — granted binds acquire slots in batch order
   (before any unbind frees one, so both programs' slot tables stay in
   lockstep with the ids the server previewed into the grants);
2. **batch order** — creates, calls (server-side), binds (collective
   schedule build when the negotiation said so, shared-cache lookup
   otherwise), unbinds, disconnects, gathers;
3. **all pushes**, fused into one :class:`~repro.core.plan.MovePlan`
   message per processor pair when a round carries several;
4. **all pulls**, likewise (over the reversed universe).

The at-most-one-op-per-tenant rule makes every operation in a round
independent, which is what makes this order safe to impose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.datamove import data_move_recv, data_move_send
from repro.core.plan import plan_move_recv, plan_move_send
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import CommSchedule, ScheduleMethod, build_schedule
from repro.core.universe import TwoProgramUniverse, Universe
from repro.dobj.protocol import Reply, SlotTable
from repro.service.cache import ServiceCache, array_signature, bind_key
from repro.service.protocol import (
    PULL,
    PUSH,
    BindGrant,
    BindOp,
    CreateOp,
    DisconnectOp,
    GatherOp,
    MoveOp,
    ServiceConfig,
    UnbindOp,
)
from repro.service.session import make_sor, materialize_array
from repro.vmachine.faults import PeerLostError, RankLostError

__all__ = [
    "Round",
    "Shutdown",
    "GatewayState",
    "GatewayBinding",
    "ProtocolError",
    "execute_round",
    "gateway_follower_loop",
    "guard_peer",
]


class ProtocolError(RuntimeError):
    """The two programs' mirrored state diverged — a service bug, raised
    loudly instead of letting a desynchronized collective hang."""


@dataclass(frozen=True)
class Round:
    """One dispatch round, broadcast from the gateway's rank 0.

    ``ops`` is the full sealed batch **including** gateway-local
    operations (creates, gathers); ``grants`` are the server's bind
    verdicts, aligned with the round's :class:`BindOp` entries in batch
    order (empty when the round carries no binds).
    """

    seq: int
    ops: tuple = ()
    grants: tuple = ()


@dataclass(frozen=True)
class Shutdown:
    """Terminal broadcast: the follower loops return."""

    reason: str = ""


@dataclass
class GatewayBinding:
    """One rank's record of an established tenant binding."""

    slot: int
    tenant: int
    key: tuple                 # schedule-cache key (embeds the signature)
    schedule: CommSchedule
    array_ref: tuple           # (tenant, array_name)
    lib: str


@dataclass
class GatewayState:
    """Per-rank gateway state, identical in shape on every gateway rank.

    All mutation happens inside :func:`execute_round`, driven by the
    broadcast op stream — which is what keeps the replicas (and the
    server's mirror tables) consistent without shipping state.
    """

    ctx: Any
    server: str
    config: ServiceConfig
    universe: TwoProgramUniverse
    cache: ServiceCache
    policy: ExecutorPolicy
    slots: SlotTable = field(default_factory=SlotTable)
    bindings: dict[int, GatewayBinding] = field(default_factory=dict)
    #: (tenant, name) -> (spec, array, set-of-regions)
    arrays: dict[tuple, tuple] = field(default_factory=dict)
    rounds: int = 0

    @property
    def comm(self):
        return self.ctx.comm

    @property
    def proc(self):
        return self.ctx.comm.process

    def signature_of(self, tenant: int, name: str) -> tuple:
        """Canonical content key of one tenant array (rank-local)."""
        spec, array, sor = self._array(tenant, name)
        return array_signature(spec.lib, array, sor)

    def _array(self, tenant: int, name: str) -> tuple:
        try:
            return self.arrays[(tenant, name)]
        except KeyError:
            raise KeyError(
                f"tenant {tenant} has no materialized array {name!r}"
            ) from None


def make_gateway_state(ctx, server: str, config: ServiceConfig) -> GatewayState:
    """Build one rank's gateway state (collective-free)."""
    from repro.core.coupling import coupled_universe

    universe = coupled_universe(ctx, server, "src")
    if config.reliability:
        universe.enable_reliability()
    metrics = ctx.comm.process.metrics
    cache = ServiceCache(
        schedule_maxsize=config.schedule_cache_size,
        plan_maxsize=config.plan_cache_size,
        metrics=metrics,
    )
    return GatewayState(
        ctx=ctx,
        server=server,
        config=config,
        universe=universe,
        cache=cache,
        policy=ExecutorPolicy.coerce(config.policy),
    )


# ---------------------------------------------------------------------------
# peer-failure translation
# ---------------------------------------------------------------------------


def guard_peer(universe: Universe, deadline_s, direction: str, fn, *args, **kwargs):
    """Run one collective phase, upgrading transport-level failures
    (:class:`~repro.vmachine.faults.RankLostError`, ``TimeoutError``) to
    :class:`~repro.vmachine.faults.PeerLostError` naming the peer program
    — the service must report *which coupled program* died, and must do
    so within the deadline instead of wedging every tenant session."""
    try:
        return fn(*args, **kwargs)
    except PeerLostError:
        raise
    except (RankLostError, TimeoutError) as exc:
        raise peer_lost(universe, deadline_s, exc, direction) from exc


def peer_lost(
    universe: Universe, deadline_s, exc: BaseException, direction: str
) -> PeerLostError:
    proc = universe.process
    if isinstance(exc, RankLostError):
        return PeerLostError(
            exc.rank,
            exc.lost_rank,
            f"{direction}: {exc.reason}",
            peer_program=universe.peer_program,
            pending=exc.pending,
            last_ack=exc.last_ack,
        )
    rel = universe.reliability
    return PeerLostError(
        proc.rank,
        -1,
        f"{direction} exceeded the {deadline_s}s service deadline: {exc}",
        peer_program=universe.peer_program,
        pending=proc.mailbox.pending_summary(),
        last_ack=rel.describe() if rel is not None else None,
    )


# ---------------------------------------------------------------------------
# round execution (collective over the gateway program)
# ---------------------------------------------------------------------------


def execute_round(state: GatewayState, rnd: Round) -> dict[int, Reply]:
    """Execute one round on this gateway rank (collective).

    Returns the replies of the *gateway-local* operations (creates and
    gathers), keyed by op index — meaningful on rank 0, where the
    dispatcher pairs them with the server's :class:`BatchReply` to
    resolve tenant futures.
    """
    state.rounds += 1
    state.proc.metrics.incr("svc_rounds")
    local: dict[int, Reply] = {}

    # Phase 1: slot acquisition for granted binds, in batch order.  Runs
    # before any unbind in the same round frees a slot, matching the
    # server's preview-time view of its table.
    grant_of: dict[int, BindGrant] = {}
    grants = iter(rnd.grants)
    for i, op in enumerate(rnd.ops):
        if isinstance(op, BindOp):
            grant = next(grants)
            grant_of[i] = grant
            if grant.ok:
                slot = state.slots.acquire()
                if slot != grant.slot:
                    raise ProtocolError(
                        f"slot tables diverged: gateway acquired {slot}, "
                        f"server granted {grant.slot}"
                    )

    # Phase 2: batch order.
    pushes: list[MoveOp] = []
    pulls: list[MoveOp] = []
    for i, op in enumerate(rnd.ops):
        if isinstance(op, CreateOp):
            sor = make_sor(op.spec.region, op.spec.n)
            array = materialize_array(op.spec, state.comm)
            state.arrays[(op.tenant, op.name)] = (op.spec, array, sor)
            local[i] = Reply(ok=True)

        elif isinstance(op, GatherOp):
            _, array, _ = state._array(op.tenant, op.name)
            value = array.gather_global()  # collective over the gateway
            local[i] = Reply(ok=True, value=value)

        elif isinstance(op, BindOp):
            _execute_bind(state, op, grant_of[i])

        elif isinstance(op, UnbindOp):
            binding = state.bindings.pop(op.slot, None)
            if binding is not None:
                state.slots.release(op.slot)

        elif isinstance(op, DisconnectOp):
            _disconnect_tenant(state, op.tenant)

        elif isinstance(op, MoveOp):
            # A move on a slot this round's mirror no longer holds is
            # skipped on *both* programs (the server replies an error);
            # liveness is decided from replicated state, so the skip
            # decision is identical everywhere.
            if op.slot in state.bindings:
                (pushes if op.direction == PUSH else pulls).append(op)

        # CallOp / ShutdownOp execute on the server only.

    # Phases 3-4: fused bulk transfers.
    _execute_moves(state, pushes, PUSH)
    _execute_moves(state, pulls, PULL)
    return local


def _execute_bind(state: GatewayState, op: BindOp, grant: BindGrant) -> None:
    if not grant.ok:
        return
    spec, array, sor = state._array(op.tenant, op.array_name)
    key = bind_key(op.obj, op.attr, op.signature)

    def build():
        sched = guard_peer(
            state.universe, state.config.deadline_s, "bind (schedule build)",
            build_schedule,
            state.universe,
            spec.lib, array, sor,
            spec.lib, None, None,  # destination side lives in the server
            method=ScheduleMethod.COOPERATION,
            policy=state.policy,
        )
        state.cache.store_schedule(key, sched)
        return sched

    if grant.need_build:
        state.cache.note_build(key)
        sched = build()
    else:
        sched = state.cache.lookup_schedule(key)
        if sched is None:
            # Evicted between the negotiation's peek and this lookup —
            # possible when the cache holds fewer entries than one
            # round's distinct keys.  Both caches are deterministic
            # replicas of the same op stream, so the server reaches the
            # identical conclusion and joins this collective rebuild.
            sched = build()
    state.bindings[grant.slot] = GatewayBinding(
        slot=grant.slot,
        tenant=op.tenant,
        key=key,
        schedule=sched,
        array_ref=(op.tenant, op.array_name),
        lib=spec.lib,
    )


def _disconnect_tenant(state: GatewayState, tenant: int) -> None:
    for slot in sorted(
        s for s, b in state.bindings.items() if b.tenant == tenant
    ):
        del state.bindings[slot]
        state.slots.release(slot)
    for ref in [r for r in state.arrays if r[0] == tenant]:
        del state.arrays[ref]


def _execute_moves(
    state: GatewayState, ops: list[MoveOp], direction: str
) -> None:
    """One direction's transfers for a round, fused across tenants.

    ``k >= 2`` independent moves compile (or fetch from the shared plan
    cache) one :class:`~repro.core.plan.MovePlan` — one message per
    gateway/server processor pair for the *whole group*, which is where
    multi-tenant batching pays: the per-pair latency is amortized over
    every tenant in the round.  A single move keeps the plain
    ``data_move`` path so its logical clock matches the one-client
    protocol exactly.
    """
    if not ops:
        return
    bindings = [state.bindings[op.slot] for op in ops]
    arrays = [state.arrays[b.array_ref][1] for b in bindings]
    keys = [b.key for b in bindings]
    deadline = state.config.deadline_s
    state.proc.metrics.incr("svc_moves", len(ops))
    if direction == PUSH:
        # Gateway is the forward-schedule source: send half.
        if len(ops) == 1:
            guard_peer(
                state.universe, deadline, "push (send half)",
                data_move_send, bindings[0].schedule, arrays[0],
                state.universe, policy=state.policy, timeout=deadline,
            )
            return
        plan = state.cache.plan_for(
            PUSH, keys, [b.schedule for b in bindings]
        )
        guard_peer(
            state.universe, deadline, "fused push (send half)",
            plan_move_send, plan, arrays, state.universe,
            policy=state.policy, timeout=deadline,
        )
        return
    runiverse = state.universe.reversed()
    if len(ops) == 1:
        guard_peer(
            runiverse, deadline, "pull (receive half)",
            data_move_recv, bindings[0].schedule.reverse(), arrays[0],
            runiverse, policy=state.policy, timeout=deadline,
        )
        return
    plan = state.cache.plan_for(
        PULL, keys, lambda: [b.schedule.reverse() for b in bindings]
    )
    guard_peer(
        runiverse, deadline, "fused pull (receive half)",
        plan_move_recv, plan, arrays, runiverse,
        policy=state.policy, timeout=deadline,
    )


def gateway_follower_loop(state: GatewayState) -> None:
    """Ranks >= 1 of the gateway: execute broadcast rounds until shutdown.

    A peer loss raised mid-round ends the loop gracefully — rank 0 makes
    the same observation at the same collective point and stops
    broadcasting, so returning (rather than crashing the rank) is what
    keeps "no wedged sessions" true on every rank.
    """
    while True:
        msg = state.comm.bcast(None, root=0)
        if isinstance(msg, Shutdown):
            return
        try:
            execute_round(state, msg)
        except PeerLostError:
            state.proc.metrics.incr("svc_peer_lost")
            return
