"""Batched wire protocol of the multi-tenant coupling service.

The service generalizes the one-client :mod:`repro.dobj` protocol to many
concurrent *tenant sessions* multiplexed by a gateway program: instead of
one ``Request`` per control round trip, the gateway's rank 0 ships one
:class:`ServiceBatch` per dispatch round — the head operation of every
ready session — and the server answers with one :class:`BatchReply`.
Heavy traffic thus pays the control-channel latency alpha once per
*round*, not once per request, and the moves inside a round fuse into one
:class:`~repro.core.plan.MovePlan` message per processor pair.

Binds carry the tenant array's canonical **signature** — the
``(distribution, region-set, dtype)`` content key — so both programs can
consult their shared cross-tenant caches; the :class:`BindAck` phase
negotiates, per bind, whether the collective schedule build can be
skipped (both sides hit) before either program commits to it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.dobj.protocol import Reply

__all__ = [
    "TAG_SERVICE",
    "ServiceConfig",
    "CallOp",
    "BindOp",
    "UnbindOp",
    "MoveOp",
    "DisconnectOp",
    "ShutdownOp",
    "CreateOp",
    "GatherOp",
    "ServiceBatch",
    "BindGrant",
    "BindAck",
    "BatchReply",
    "server_ops",
    "PUSH",
    "PULL",
]

#: control tag of the gateway<->server batch channel (class "user" for the
#: fault model, like the dobj control tag — chaos plans target the data
#: plane by default, and the batch channel stays on the reliable setup
#: transport exactly like schedule construction does)
TAG_SERVICE = (1 << 21) + 101

PUSH = "push"
PULL = "pull"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the coupling service, shared by gateway and server.

    The cache sizes must agree *within* each program (every rank of a
    program decides hits deterministically together); across programs the
    :class:`BindAck` negotiation keeps the two cache hierarchies coherent
    even when their sizes differ.
    """

    #: admission watermark: total queued ops across all sessions beyond
    #: which new submissions are shed with ``Reply(ok=False, error="busy")``
    max_queue_depth: int = 1024
    #: per-tenant cap on submitted-but-unresolved operations
    max_inflight_per_tenant: int = 8
    #: largest number of ops dispatched in one batch round
    max_batch_ops: int = 256
    #: entries in the shared schedule cache (None = unbounded)
    schedule_cache_size: int | None = None
    #: entries in the shared fused-plan cache (None = unbounded)
    plan_cache_size: int | None = None
    #: executor policy for schedule builds and data moves
    policy: str = "ordered"
    #: enable the reliable-delivery layer on the data plane
    reliability: bool = False
    #: wall-clock bound per collective phase before declaring the peer lost
    deadline_s: float | None = None
    #: cooperative-scheduling yields granted to runnable tenant tasks
    #: before a round is sealed (the batching window)
    batch_window: int = 2

    def fingerprint(self) -> tuple:
        """The cross-program compatibility core of the config."""
        return ("v1", self.policy, self.reliability)


def _pickled_nbytes(obj: Any) -> int:
    try:
        return len(pickle.dumps(obj, protocol=4))
    except Exception:  # noqa: BLE001 - cost model only, never fail a send
        return 64


# ---------------------------------------------------------------------------
# per-tenant operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallOp:
    """SPMD method invocation on a named server object."""

    tenant: int
    obj: str
    method: str
    args: tuple = ()
    oneway: bool = False

    @property
    def nbytes(self) -> int:
        return 48 + (_pickled_nbytes(self.args) if self.args else 0)


@dataclass(frozen=True)
class BindOp:
    """Establish a bulk-data path between a tenant array and an export.

    ``signature`` is the canonical content key of the tenant's side of
    the requested copy — ``(lib, distribution, region-set, dtype)`` — and
    ``client_hit`` whether the gateway's shared cache already holds the
    schedule for ``(obj, attr, signature)``.  ``client_hit`` is refreshed
    by the dispatcher when the round is sealed (the cache may have moved
    between submission and dispatch); the server answers through the
    :class:`BindAck` phase before any collective work starts.
    ``array_name`` stays gateway-local in meaning but rides the op so
    every gateway rank can resolve the tenant's array from the round
    broadcast.
    """

    tenant: int
    obj: str
    attr: str
    array_name: str
    signature: tuple
    client_hit: bool = False

    @property
    def nbytes(self) -> int:
        return 48 + _pickled_nbytes(self.signature)


@dataclass(frozen=True)
class UnbindOp:
    """Release one binding slot (both programs reuse it)."""

    tenant: int
    slot: int

    nbytes = 48


@dataclass(frozen=True)
class MoveOp:
    """One tenant's bulk transfer over an established binding."""

    tenant: int
    slot: int
    direction: str  # PUSH (tenant -> object) or PULL (object -> tenant)

    nbytes = 48


@dataclass(frozen=True)
class DisconnectOp:
    """Session end: release every binding slot the tenant still holds."""

    tenant: int

    nbytes = 48


@dataclass(frozen=True)
class ShutdownOp:
    """Stop the service (gateway-initiated; final batch)."""

    reason: str = ""

    nbytes = 48


# ---------------------------------------------------------------------------
# gateway-local operations (never shipped to the server, but part of the
# round broadcast so every gateway rank executes them collectively)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateOp:
    """Materialize a tenant-owned distributed array on the gateway ranks."""

    tenant: int
    name: str
    spec: Any  # ArraySpec — deterministic per-rank factory input

    @property
    def nbytes(self) -> int:
        return 48 + _pickled_nbytes(self.spec)


@dataclass(frozen=True)
class GatherOp:
    """Gather a tenant array's global value to the gateway's rank 0."""

    tenant: int
    name: str

    nbytes = 48


#: op types the server must see (everything else is gateway-local)
_SERVER_OPS = (CallOp, BindOp, UnbindOp, MoveOp, DisconnectOp, ShutdownOp)


def server_ops(ops: tuple) -> tuple:
    """The sub-sequence of ``ops`` that rides the wire to the server."""
    return tuple(op for op in ops if isinstance(op, _SERVER_OPS))


# ---------------------------------------------------------------------------
# envelopes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceBatch:
    """One dispatch round's server-visible operations, in batch order."""

    seq: int
    ops: tuple = ()

    @property
    def nbytes(self) -> int:
        return 32 + sum(op.nbytes for op in self.ops)

    @property
    def has_binds(self) -> bool:
        return any(isinstance(op, BindOp) for op in self.ops)

    @property
    def shutdown(self) -> bool:
        return any(isinstance(op, ShutdownOp) for op in self.ops)


@dataclass(frozen=True)
class BindGrant:
    """Server's per-bind verdict, delivered before collective work."""

    tenant: int
    ok: bool
    slot: int = -1
    #: must both programs run the collective schedule build?
    need_build: bool = True
    error: str = ""

    nbytes = 48


@dataclass(frozen=True)
class BindAck:
    """Bind-negotiation phase of a round (sent only when binds exist)."""

    seq: int
    grants: tuple = ()

    @property
    def nbytes(self) -> int:
        return 32 + sum(g.nbytes for g in self.grants)


@dataclass(frozen=True)
class BatchReply:
    """Per-op replies of one round, in server-op order (oneways skipped)."""

    seq: int
    replies: tuple = ()
    #: server-side counters piggybacked for gateway-side observability
    server_counters: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return 32 + sum(r.nbytes for r in self.replies) + 16 * len(
            self.server_counters
        )
