"""Admission control and bounded backpressure for the coupling service.

Two limits protect the collective dispatch loop from unbounded queue
growth under overload, both enforced at *submission* time (before an
operation ever enters a session queue):

- the **queue-depth watermark**: total queued-but-undispatched operations
  across all sessions may never exceed ``max_queue_depth``;
- the **per-tenant in-flight cap**: one tenant may never have more than
  ``max_inflight_per_tenant`` submitted-but-unresolved operations.

A submission over either limit is *shed*: the session's future resolves
immediately with ``Reply(ok=False, error="busy")`` and the session API
raises :class:`ServiceBusyError` — the tenant retries (with backoff) or
gives up, but the service's memory and latency stay bounded and no
session can wedge the dispatch loop.  Sheds are counted per limit and
surfaced through the rank's metrics (``svc_shed_*``).

System-generated lifecycle operations (eviction disconnects) bypass
admission: reclaiming a dead tenant's slots must never be refused.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionControl", "AdmissionDecision", "ServiceBusyError"]

BUSY = "busy"


class ServiceBusyError(RuntimeError):
    """The service shed this operation under overload; retry later."""

    def __init__(self, reason: str):
        super().__init__(f"service busy: {reason}")
        self.reason = reason


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    reason: str = ""


class AdmissionControl:
    """Watermark + per-tenant cap enforcement with shed accounting."""

    def __init__(
        self,
        max_queue_depth: int,
        max_inflight_per_tenant: int,
        metrics=None,
    ):
        if max_queue_depth < 1 or max_inflight_per_tenant < 1:
            raise ValueError("admission limits must be positive")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.metrics = metrics
        #: total queued-but-undispatched ops across every session
        self.queued = 0
        #: largest queue depth ever observed (bounded by the watermark)
        self.queue_high_water = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_tenant_cap = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    def try_admit(self, tenant_inflight: int) -> AdmissionDecision:
        """Admit one submission (and account for it) or shed it."""
        if tenant_inflight >= self.max_inflight_per_tenant:
            self.shed_tenant_cap += 1
            self._count("svc_shed_tenant_cap")
            return AdmissionDecision(
                False,
                f"tenant in-flight cap ({self.max_inflight_per_tenant}) reached",
            )
        if self.queued >= self.max_queue_depth:
            self.shed_queue_full += 1
            self._count("svc_shed_queue_full")
            return AdmissionDecision(
                False,
                f"queue-depth watermark ({self.max_queue_depth}) reached",
            )
        self.queued += 1
        self.queue_high_water = max(self.queue_high_water, self.queued)
        self.admitted += 1
        self._count("svc_admitted")
        return AdmissionDecision(True)

    def enqueue_system(self) -> None:
        """Account a system lifecycle op (bypasses the limits)."""
        self.queued += 1
        self.queue_high_water = max(self.queue_high_water, self.queued)

    def dispatched(self, n: int) -> None:
        """``n`` queued ops left the queues for a batch round."""
        if n > self.queued:
            raise ValueError(f"dispatched {n} ops but only {self.queued} queued")
        self.queued -= n

    def snapshot(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_tenant_cap": self.shed_tenant_cap,
            "queue_high_water": self.queue_high_water,
            "queued": self.queued,
        }
