"""The gateway front-end: asyncio tenants multiplexed onto SPMD rounds.

:func:`run_service_gateway` is the gateway program's body.  Rank 0 runs
an asyncio event loop hosting every tenant session as a task; ranks >= 1
run :func:`~repro.service.dispatch.gateway_follower_loop`, executing the
rounds rank 0 broadcasts.  The dispatcher alternates two modes:

- **cooperative** — tenant tasks run, submitting operations into their
  session queues (bounded by admission control) for ``batch_window``
  scheduler passes;
- **collective** — the dispatcher seals a round (the head operation of
  every ready session, so every op in a round belongs to a *different*
  tenant and all are mutually independent), ships the server-visible
  slice to the server, negotiates binds, broadcasts the round to the
  gateway ranks, executes it, and resolves the tenants' futures from the
  server's batched reply.

The collective phase blocks the event loop deliberately: every tenant
with an op in flight is awaiting a future only this round can resolve,
so there is nothing useful to interleave — and keeping the loop
single-threaded keeps dispatch order deterministic.

Failure containment: a tenant task that raises is *evicted* — its queued
operations are cancelled, its admission credit returned, and a system
disconnect reclaims its binding slots on both programs — while every
other session keeps running.  A lost server peer surfaces as
:class:`~repro.vmachine.faults.PeerLostError` within the configured
deadline; the dispatcher then fails all sessions, releases the follower
ranks, and returns a report (no wedged sessions, no hung ranks).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.coupling import coupled_universe  # noqa: F401  (re-export site)
from repro.dobj.protocol import Reply
from repro.service.admission import AdmissionControl
from repro.service.cache import bind_key
from repro.service.dispatch import (
    GatewayState,
    Round,
    Shutdown,
    execute_round,
    gateway_follower_loop,
    guard_peer,
    make_gateway_state,
)
from repro.service.protocol import (
    TAG_SERVICE,
    BindOp,
    CallOp,
    CreateOp,
    GatherOp,
    ServiceBatch,
    ServiceConfig,
    ShutdownOp,
    server_ops,
)
from repro.service.session import DisconnectOp, Session, TenantSpec
from repro.vmachine.faults import PeerLostError, RankLostError

__all__ = ["run_service_gateway", "ServiceReport", "TenantReport"]


@dataclass
class TenantReport:
    """Outcome of one tenant session."""

    name: str
    ok: bool
    error: str = ""
    result: Any = None
    ops_ok: int = 0
    ops_failed: int = 0
    ops_shed: int = 0
    #: wall-clock seconds from submission to resolution, per resolved op
    latencies: list = field(default_factory=list)


@dataclass
class ServiceReport:
    """What one service run did, assembled on the gateway's rank 0."""

    tenants: list[TenantReport]
    rounds: int
    cache: dict
    admission: dict
    server_counters: dict
    slot_high_water: int
    peer_lost: str = ""

    @property
    def ok(self) -> bool:
        return not self.peer_lost and all(t.ok for t in self.tenants)

    def tenant(self, name: str) -> TenantReport:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(f"no tenant {name!r} in this report")


def run_service_gateway(
    ctx,
    server: str,
    tenants: Sequence[TenantSpec],
    config: ServiceConfig | None = None,
) -> ServiceReport | None:
    """Gateway program body: run every tenant session against ``server``.

    Collective over the gateway program; returns the
    :class:`ServiceReport` on rank 0 and ``None`` elsewhere.
    """
    config = config or ServiceConfig()
    state = make_gateway_state(ctx, server, config)
    if ctx.comm.rank != 0:
        gateway_follower_loop(state)
        return None
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(
            _Dispatcher(state, tenants, loop).run()
        )
    finally:
        loop.close()


class _Dispatcher:
    """Rank 0's dispatch scheduler (also the ``core`` the sessions see)."""

    def __init__(self, state: GatewayState, tenants, loop):
        self.state = state
        self.config = state.config
        self.loop = loop
        self.admission = AdmissionControl(
            state.config.max_queue_depth,
            state.config.max_inflight_per_tenant,
            metrics=state.proc.metrics,
        )
        self.tenant_specs = list(tenants)
        self.sessions: list[Session] = []
        self.tasks: list[asyncio.Task] = []
        self.seq = 0
        self.server_counters: dict = {}
        self._work = asyncio.Event()
        self._reaped: set[int] = set()
        self._tenant_errors: dict[str, str] = {}

    # -- the Session-facing core API ----------------------------------------

    def notify_work(self) -> None:
        self._work.set()

    def signature_of(self, tenant: int, array_name: str, spec) -> tuple:
        return self.state.signature_of(tenant, array_name)

    def cache_would_hit(self, obj: str, attr: str, signature: tuple) -> bool:
        return self.state.cache.peek_schedule(bind_key(obj, attr, signature))

    # -- main loop -----------------------------------------------------------

    async def run(self) -> ServiceReport:
        for i, spec in enumerate(self.tenant_specs):
            session = Session(i, spec.name, self)
            self.sessions.append(session)
            self.tasks.append(self.loop.create_task(spec.fn(session)))
        peer_lost = ""
        while True:
            for _ in range(max(1, self.config.batch_window)):
                await asyncio.sleep(0)
            self._reap_finished()
            harvested = self._harvest()
            if not harvested:
                if all(t.done() for t in self.tasks) and not any(
                    s.queue for s in self.sessions
                ):
                    break
                await self._wait_for_work()
                continue
            try:
                self._run_round(harvested)
            except PeerLostError as exc:
                peer_lost = str(exc)
                self.state.proc.metrics.incr("svc_peer_lost")
                break
        if not peer_lost:
            self._shutdown_round()
        self.state.comm.bcast(Shutdown(peer_lost or "done"), root=0)
        if peer_lost:
            self._fail_everything()
        return self._report(peer_lost)

    # -- harvesting ----------------------------------------------------------

    def _harvest(self) -> list[tuple]:
        """Seal one round: the head op of every ready session, rotated
        for fairness, at most ``max_batch_ops`` total.  Bind ops get
        their ``client_hit`` refreshed here — the cache may have moved
        between submission and dispatch, and the negotiation must see
        the truth at build time."""
        harvested: list[tuple] = []
        n = len(self.sessions)
        if n == 0:
            return harvested
        start = self.seq % n
        for i in range(n):
            session = self.sessions[(start + i) % n]
            if not session.queue:
                continue
            if len(harvested) >= self.config.max_batch_ops:
                break
            pending = session.queue.pop(0)
            op = pending.op
            if isinstance(op, BindOp):
                op = replace(
                    op,
                    client_hit=self.state.cache.peek_schedule(
                        bind_key(op.obj, op.attr, op.signature)
                    ),
                )
            harvested.append((session, pending, op))
        self.admission.dispatched(len(harvested))
        return harvested

    async def _wait_for_work(self) -> None:
        self._work.clear()
        waiter = self.loop.create_task(self._work.wait())
        live = [t for t in self.tasks if not t.done()]
        await asyncio.wait([waiter, *live], return_when=asyncio.FIRST_COMPLETED)
        if not waiter.done():
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)

    # -- one round -----------------------------------------------------------

    def _run_round(self, harvested: list[tuple]) -> None:
        state = self.state
        seq, self.seq = self.seq, self.seq + 1
        ops = tuple(op for _, _, op in harvested)
        batch = ServiceBatch(seq, server_ops(ops))
        ic = state.ctx.peer(state.server)
        deadline = self.config.deadline_s
        if batch.ops:
            ic.send(0, batch, TAG_SERVICE)
        grants = ()
        if batch.has_binds:
            ack = guard_peer(
                state.universe, deadline, "bind negotiation",
                ic.recv, 0, TAG_SERVICE, timeout=deadline,
            )
            grants = ack.grants
        rnd = Round(seq, ops, grants)
        state.comm.bcast(rnd, root=0)
        local = execute_round(state, rnd)
        reply = None
        if batch.ops:
            reply = guard_peer(
                state.universe, deadline, "round reply",
                ic.recv, 0, TAG_SERVICE, timeout=deadline,
            )
            self.server_counters = dict(reply.server_counters)
        self._resolve(harvested, local, reply)

    def _resolve(self, harvested, local: dict, reply) -> None:
        replies = iter(reply.replies if reply is not None else ())
        for i, (session, pending, op) in enumerate(harvested):
            if isinstance(op, (CreateOp, GatherOp)):
                result = local[i]
            elif isinstance(op, DisconnectOp):
                result = next(replies)
            elif isinstance(op, CallOp) and op.oneway:
                # Resolved at dispatch: oneway carries no result and
                # reports no server-side failure (mirroring dobj).
                result = Reply(ok=True)
            else:
                result = next(replies)
            session.inflight -= 1
            if not pending.future.done():
                pending.future.set_result(result)

    def _shutdown_round(self) -> None:
        state = self.state
        seq, self.seq = self.seq, self.seq + 1
        ic = state.ctx.peer(state.server)
        try:
            ic.send(0, ServiceBatch(seq, (ShutdownOp("gateway done"),)),
                    TAG_SERVICE)
            reply = ic.recv(0, TAG_SERVICE, timeout=self.config.deadline_s)
            self.server_counters = dict(reply.server_counters)
        except (RankLostError, TimeoutError):
            pass  # peer already gone; the report still assembles

    # -- tenant lifecycle ----------------------------------------------------

    def _reap_finished(self) -> None:
        for session, task in zip(self.sessions, self.tasks):
            if not task.done() or session.tenant_id in self._reaped:
                continue
            self._reaped.add(session.tenant_id)
            if task.cancelled():
                continue
            exc = task.exception()
            if exc is not None:
                self._evict(session, exc)
            elif not session.closed:
                # Clean finisher that skipped close(): reclaim its slots.
                session.closed = True
                self._system_disconnect(session)

    def _evict(self, session: Session, exc: BaseException) -> None:
        """Contain one failed tenant without touching the others."""
        session.evicted = True
        session.closed = True
        self._tenant_errors[session.name] = f"{type(exc).__name__}: {exc}"
        dropped = list(session.queue)
        session.queue.clear()
        if dropped:
            self.admission.dispatched(len(dropped))
        for pending in dropped:
            session.inflight -= 1
            pending.future.cancel()
        self.state.proc.metrics.incr("svc_tenants_evicted")
        self._system_disconnect(session)

    def _system_disconnect(self, session: Session) -> None:
        if session.bindings or session.arrays:
            session._submit(DisconnectOp(session.tenant_id), system=True)

    def _fail_everything(self) -> None:
        """Peer lost: cancel every outstanding future and task."""
        for session in self.sessions:
            session.evicted = True
            session.closed = True
            undone = list(session.queue)
            session.queue.clear()
            if undone:
                self.admission.dispatched(len(undone))
            for pending in undone:
                session.inflight -= 1
                pending.future.cancel()
        for task in self.tasks:
            if not task.done():
                task.cancel()

    # -- report --------------------------------------------------------------

    def _report(self, peer_lost: str) -> ServiceReport:
        tenants = []
        for session, task in zip(self.sessions, self.tasks):
            error = self._tenant_errors.get(session.name, "")
            if peer_lost and not error and not (
                task.done() and not task.cancelled()
            ):
                error = f"peer lost: {peer_lost}"
            result = None
            if task.done() and not task.cancelled() and task.exception() is None:
                result = task.result()
            tenants.append(
                TenantReport(
                    name=session.name,
                    ok=not error,
                    error=error,
                    result=result,
                    ops_ok=session.stats.ops_ok,
                    ops_failed=session.stats.ops_failed,
                    ops_shed=session.stats.ops_shed,
                    latencies=list(session.stats.latencies),
                )
            )
        cache = self.state.cache.snapshot()
        cache.update(self.state.cache.program_stats())
        return ServiceReport(
            tenants=tenants,
            rounds=self.state.rounds,
            cache=cache,
            admission=self.admission.snapshot(),
            server_counters=self.server_counters,
            slot_high_water=self.state.slots.high_water,
            peer_lost=peer_lost,
        )
