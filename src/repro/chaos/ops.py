"""Unstructured-mesh executors (the paper's Figure 1, loop 3)::

    forall (i = 1:Nedges)
        y(ia(i)) = y(ia(i)) + (x(ia(i)) + x(ib(i))) / 4
        y(ib(i)) = y(ib(i)) + (x(ia(i)) + x(ib(i))) / 4

``x`` and ``y`` are irregularly distributed node arrays (same
distribution); ``ia``/``ib`` are edge endpoint indices, block-distributed
over the ranks.  :class:`EdgeSweep` is the inspector/executor pair: the
inspector localizes both endpoint reference streams once
(:func:`~repro.chaos.schedule.build_gather_schedule`); the executor runs
the vectorized edge loop every timestep.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.array import ChaosArray
from repro.chaos.schedule import build_gather_schedule
from repro.vmachine.process import current_process

__all__ = ["EdgeSweep", "edge_sweep"]


class EdgeSweep:
    """Inspector/executor for the 2-endpoint edge accumulation sweep."""

    def __init__(self, x: ChaosArray, my_ia: np.ndarray, my_ib: np.ndarray):
        """Inspector: ``my_ia``/``my_ib`` are this rank's slice of the edge
        endpoint arrays (global node indices)."""
        if len(my_ia) != len(my_ib):
            raise ValueError("ia and ib must be the same length")
        self.nedges = len(my_ia)
        refs = np.concatenate([my_ia, my_ib])
        self.schedule, localized = build_gather_schedule(x, refs)
        self.loc_ia = localized[: self.nedges]
        self.loc_ib = localized[self.nedges :]

    def execute(self, x: ChaosArray, y: ChaosArray) -> None:
        """One edge sweep: gather x, accumulate into y (6 flops/edge)."""
        if y.table is not x.table and y.table.dist != x.table.dist:
            raise ValueError("x and y must share a distribution")
        buffer = self.schedule.gather(x)
        contrib = np.zeros_like(buffer)
        flux = (buffer[self.loc_ia] + buffer[self.loc_ib]) / 4.0
        np.add.at(contrib, self.loc_ia, flux)
        np.add.at(contrib, self.loc_ib, flux)
        current_process().charge_flops(6 * self.nedges)
        self.schedule.scatter_add(y, contrib)


def edge_sweep(
    x: ChaosArray, y: ChaosArray, my_ia: np.ndarray, my_ib: np.ndarray
) -> EdgeSweep:
    """One-shot inspector + executor (returns the reusable sweep object)."""
    sweep = EdgeSweep(x, my_ia, my_ib)
    sweep.execute(x, y)
    return sweep
