"""Chaos communication schedules: inspector/executor and pointwise copy.

Two schedule kinds:

- :class:`GatherSchedule` (from :func:`build_gather_schedule`) — the
  classic Chaos *inspector* for indirection-array accesses [Saltz et al.]:
  references are hashed and deduplicated, the unique off-processor ones
  are dereferenced through the translation table, and request lists are
  exchanged so owners know what to ship.  The *executor*
  (:meth:`GatherSchedule.gather` / :meth:`GatherSchedule.scatter_add`)
  then moves data with one aggregated message per processor pair per
  sweep.

- :class:`ChaosCopySchedule` (from :func:`build_chaos_copy_schedule`) —
  a pointwise copy between two translation-table-managed arrays given an
  explicit index mapping.  This is how plain Chaos implements the
  regular<->irregular mesh remap of paper Table 2: the regular mesh must
  first be wrapped in a pointwise translation table, and the copy
  executor pays an extra internal buffer copy and an extra level of
  indirection — the overheads the paper contrasts with Meta-Chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.array import ChaosArray
from repro.chaos.translation import TranslationTable
from repro.core.wire import RunEncoded
from repro.vmachine.comm import Communicator
from repro.vmachine.process import current_process

__all__ = [
    "GatherSchedule",
    "build_gather_schedule",
    "ChaosCopySchedule",
    "build_chaos_copy_schedule",
]

_TAG_GATHER = 1 << 17
_TAG_SCATTER = (1 << 17) + 1
_TAG_COPY = (1 << 17) + 2

# Extra internal-copy factor of the Chaos copy executor (paper §5.1: "the
# Chaos implementation internally requires an extra copy of the data and
# also an extra level of indirect data access").
_CHAOS_COPY_OVERHEAD = 1.35


@dataclass
class GatherSchedule:
    """Executor-side state for one indirection access pattern.

    ``positions`` maps each original reference to a slot of the *gather
    buffer*, whose layout is ``[all local elements | halo]``.  ``sends``
    are, per requesting rank, the local offsets they need; ``halo`` are,
    per owner rank, the buffer slots their shipment fills.
    """

    nlocal: int
    positions: np.ndarray
    sends: dict[int, np.ndarray] = field(default_factory=dict)
    halo: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def halo_size(self) -> int:
        return int(sum(len(v) for v in self.halo.values()))

    def gather(self, array: ChaosArray) -> np.ndarray:
        """Fill and return the gather buffer (one message per owner pair)."""
        comm = array.comm
        proc = current_process()
        buffer = np.empty(self.nlocal + self.halo_size, dtype=array.dtype)
        buffer[: self.nlocal] = array.local
        proc.charge_mem(array.local.nbytes)
        for requester in sorted(self.sends):
            offs = self.sends[requester]
            proc.charge_pack(len(offs))
            comm.send(requester, array.local[offs], _TAG_GATHER)
        for owner in sorted(self.halo):
            slots = self.halo[owner]
            values = comm.recv(owner, _TAG_GATHER)
            proc.charge_pack(len(slots))
            buffer[slots] = values
        return buffer

    def scatter_add(self, array: ChaosArray, contrib: np.ndarray) -> None:
        """Accumulate buffer-shaped contributions back into the owners.

        The local slice adds in place; halo contributions travel to their
        owners (reverse of :meth:`gather`) and are added there.
        """
        comm = array.comm
        proc = current_process()
        array.local += contrib[: self.nlocal]
        proc.charge_mem(array.local.nbytes)
        for owner in sorted(self.halo):
            slots = self.halo[owner]
            proc.charge_pack(len(slots))
            comm.send(owner, contrib[slots], _TAG_SCATTER)
        for requester in sorted(self.sends):
            offs = self.sends[requester]
            values = comm.recv(requester, _TAG_SCATTER)
            proc.charge_pack(len(offs))
            np.add.at(array.local, offs, values)


def build_gather_schedule(
    array: ChaosArray, global_refs: np.ndarray
) -> tuple[GatherSchedule, np.ndarray]:
    """Chaos inspector (collective): localize ``global_refs``.

    Returns the schedule and the *localized* reference array: positions
    into the gather buffer, aligned with ``global_refs``.  References are
    deduplicated first (hash cost per reference), so the translation
    table is dereferenced once per *unique* reference.
    """
    comm = array.comm
    proc = current_process()
    proc.charge_startup()
    refs = np.asarray(global_refs, dtype=np.int64)
    proc.charge_hash(len(refs))
    uniq, inverse = np.unique(refs, return_inverse=True)
    owners, offsets = array.table.dereference(uniq)

    me = comm.rank
    mine = owners == me
    positions_of_unique = np.empty(len(uniq), dtype=np.int64)
    positions_of_unique[mine] = offsets[mine]

    sched = GatherSchedule(nlocal=array.local.size, positions=np.empty(0, dtype=np.int64))
    # Group the off-processor references by owner; halo slots are assigned
    # in (owner, reference) order after the local block.
    requests: dict[int, np.ndarray] = {}
    halo_base = array.local.size
    other = np.flatnonzero(~mine)
    if len(other):
        order = other[np.argsort(owners[other], kind="stable")]
        owner_sorted = owners[order]
        bounds_idx = np.flatnonzero(np.diff(owner_sorted)) + 1
        groups = np.split(order, bounds_idx)
        for group in groups:
            owner = int(owners[group[0]])
            slots = halo_base + np.arange(len(group), dtype=np.int64)
            halo_base += len(group)
            positions_of_unique[group] = slots
            sched.halo[owner] = slots
            requests[owner] = offsets[group]
    # Tell each owner which of its elements we need (offset lists; for
    # irregular meshes these barely compress, matching Chaos reality).
    incoming = comm.alltoall_sparse(
        {owner: RunEncoded(offs) for owner, offs in requests.items()}
    )
    for requester, enc in incoming.items():
        if requester != me:
            sched.sends[requester] = enc.array
    sched.positions = positions_of_unique
    return sched, positions_of_unique[inverse]


@dataclass
class ChaosCopySchedule:
    """Pointwise copy schedule between two irregular arrays (one rank)."""

    sends: dict[int, np.ndarray] = field(default_factory=dict)
    recvs: dict[int, np.ndarray] = field(default_factory=dict)
    n_elements: int = 0

    def reverse(self) -> "ChaosCopySchedule":
        return ChaosCopySchedule(
            sends=dict(self.recvs), recvs=dict(self.sends), n_elements=self.n_elements
        )

    def execute(
        self, src_local: np.ndarray, dst_local: np.ndarray, comm: Communicator
    ) -> None:
        """Move the data.  Pays the Chaos extra-internal-copy overhead on
        both the pack and unpack sides, and stages even the local part
        through a buffer."""
        proc = current_process()
        for d in sorted(self.sends):
            offs = self.sends[d]
            if not len(offs):
                continue
            proc.charge_pack(len(offs) * _CHAOS_COPY_OVERHEAD)
            buf = src_local[offs]
            if d == comm.rank:
                dst_local[self.recvs[d]] = buf
                proc.charge_pack(len(offs) * _CHAOS_COPY_OVERHEAD)
            else:
                comm.send(d, buf, _TAG_COPY)
        for s in sorted(self.recvs):
            offs = self.recvs[s]
            if not len(offs) or s == comm.rank:
                continue
            buf = comm.recv(s, _TAG_COPY)
            proc.charge_pack(len(offs) * _CHAOS_COPY_OVERHEAD)
            dst_local[offs] = buf


def build_chaos_copy_schedule(
    comm: Communicator,
    src_table: TranslationTable,
    src_gidx: np.ndarray,
    dst_table: TranslationTable,
    dst_gidx: np.ndarray,
) -> ChaosCopySchedule:
    """Chaos-native inspector for ``dst[dst_gidx[k]] = src[src_gidx[k]]``.

    The (replicated) mapping is scanned once per rank (hash cost); each
    rank handles the entries whose destination element it owns, looks its
    own addresses up locally, dereferences the *source* side through the
    source translation table (the dominating cost), and ships each source
    owner its send list.
    """
    src_gidx = np.asarray(src_gidx, dtype=np.int64)
    dst_gidx = np.asarray(dst_gidx, dtype=np.int64)
    if len(src_gidx) != len(dst_gidx):
        raise ValueError("mapping sides differ in length")
    proc = current_process()
    proc.charge_startup()
    me = comm.rank

    # Which mapping entries land on me?  One scan of the replicated
    # mapping against my ownership (hash per entry).
    proc.charge_hash(len(dst_gidx))
    dst_owner = dst_table.dist.owners[dst_gidx]
    k_mine = np.flatnonzero(dst_owner == me)
    my_dst_offsets = dst_table.dist.offset_within_owner(dst_gidx[k_mine])

    # Dereference the source side for my entries (the expensive pass).
    sranks, soffs = src_table.dereference(src_gidx[k_mine])

    sched = ChaosCopySchedule(n_elements=len(src_gidx))
    order = np.argsort(sranks, kind="stable")
    sr, so, do = sranks[order], soffs[order], my_dst_offsets[order]
    uniq, starts = np.unique(sr, return_index=True)
    bounds = np.append(starts, len(sr))
    requests: dict[int, RunEncoded] = {}
    for i, s in enumerate(uniq):
        lo, hi = bounds[i], bounds[i + 1]
        sched.recvs[int(s)] = do[lo:hi]
        requests[int(s)] = RunEncoded(so[lo:hi])
    incoming = comm.alltoall_sparse(requests)
    for requester, enc in incoming.items():
        sched.sends[requester] = enc.array
    return sched
