"""Irregularly distributed one-dimensional arrays (the Chaos data type)."""

from __future__ import annotations

import numpy as np

from repro.chaos.translation import TranslationTable
from repro.core.dataplane import accept_local, read_flat
from repro.distrib.irregular import IrregularDist
from repro.vmachine.comm import Communicator

__all__ = ["ChaosArray"]


class ChaosArray:
    """One rank's piece of an irregularly distributed 1-D array.

    Local storage holds the rank's elements ordered by ascending global
    index (the Chaos convention baked into
    :class:`~repro.distrib.irregular.IrregularDist`).
    """

    def __init__(self, comm: Communicator, table: TranslationTable, local: np.ndarray):
        if table.nprocs != comm.size:
            raise ValueError(
                f"table spans {table.nprocs} procs, communicator has {comm.size}"
            )
        expected = table.dist.local_size(comm.rank)
        if local.size != expected:
            raise ValueError(
                f"rank {comm.rank}: local storage {local.size} != {expected}"
            )
        self.comm = comm
        self.table = table
        # Zero-copy: any strided ndarray is first-class local storage.
        self.local = accept_local(local)

    # -- collective constructors ------------------------------------------------

    @classmethod
    def zeros(
        cls, comm: Communicator, owners: np.ndarray, dtype=np.float64
    ) -> "ChaosArray":
        """Distributed zeros from a partitioner's owner map."""
        table = TranslationTable.from_owners(owners, comm.size)
        n = table.dist.local_size(comm.rank)
        return cls(comm, table, np.zeros(n, dtype=dtype))

    @classmethod
    def from_global(
        cls, comm: Communicator, full: np.ndarray, owners: np.ndarray
    ) -> "ChaosArray":
        """Each rank slices its elements out of a replicated global array."""
        table = TranslationTable.from_owners(owners, comm.size)
        mine = table.local_indices(comm.rank)
        return cls(comm, table, full[mine].copy())

    @classmethod
    def like(cls, other: "ChaosArray", dtype=None) -> "ChaosArray":
        """Same distribution (shared table), fresh zero storage."""
        dtype = dtype or other.dtype
        return cls(
            other.comm, other.table, np.zeros(other.local.size, dtype=dtype)
        )

    # -- views --------------------------------------------------------------------

    @property
    def dist(self) -> IrregularDist:
        return self.table.dist

    @property
    def size(self) -> int:
        return self.table.size

    @property
    def global_shape(self) -> tuple[int, ...]:
        return (self.table.size,)

    @property
    def dtype(self):
        return self.local.dtype

    @property
    def itemsize(self) -> int:
        return self.local.dtype.itemsize

    def my_globals(self) -> np.ndarray:
        """Global indices of the local elements (ascending)."""
        return self.table.local_indices(self.comm.rank)

    # -- test/debug helpers ----------------------------------------------------------

    def gather_global(self) -> np.ndarray | None:
        """Collect the full array on rank 0 (testing oracle)."""
        pieces = self.comm.gather((self.comm.rank, read_flat(self.local).copy()))
        if pieces is None:
            return None
        out = np.zeros(self.size, dtype=self.dtype)
        for rank, local in pieces:
            out[self.table.local_indices(rank)] = local
        return out

    def __repr__(self) -> str:
        return (
            f"ChaosArray(size={self.size}, rank={self.comm.rank}/{self.comm.size}, "
            f"nlocal={self.local.size})"
        )
