"""Chaos translation tables.

A translation table maps every global index of an irregularly distributed
array to its (owner processor, local offset).  Dereferencing through the
table is the expensive primitive that dominates Chaos-style schedule
building ("the cost of the schedule computation for Chaos is dominated by
the calls to the Chaos dereference function", paper §5.1) — every lookup
is charged :attr:`~repro.vmachine.cost_model.MachineProfile.deref`.

Two storage layouts:

- :class:`TranslationTable` — fully replicated on every rank (the common
  Chaos configuration; memory cost equals the data size per rank);
- :class:`PagedTranslationTable` — pages block-distributed across ranks;
  dereferencing unowned pages requires a collective request/reply round
  (memory-scalable, slower — the trade-off the ablation benchmark
  ``bench_ablation_paged_table`` quantifies).
"""

from __future__ import annotations

import numpy as np

from repro.distrib.irregular import IrregularDist
from repro.vmachine.comm import Communicator
from repro.vmachine.process import current_process

__all__ = ["TranslationTable", "PagedTranslationTable"]

_TAG_TTABLE_REQ = 1 << 18
_TAG_TTABLE_REP = (1 << 18) + 1


class TranslationTable:
    """Replicated translation table over an :class:`IrregularDist`."""

    def __init__(self, dist: IrregularDist):
        self.dist = dist

    @classmethod
    def from_owners(cls, owners: np.ndarray, nprocs: int) -> "TranslationTable":
        """Build from a per-element owner array (a partitioner's output)."""
        return cls(IrregularDist(owners, nprocs))

    @classmethod
    def from_distribution(cls, dist, size: int) -> "TranslationTable":
        """Pointwise-ify any distribution into an explicit table.

        This is what the paper's Table 2 baseline does to make Chaos copy
        a *regular* mesh: "a Chaos-style translation table has to be
        created to describe the pointwise data distribution".  The rank
        calling this is charged the O(size) construction (one cheap
        dereference per element plus table memory traffic).
        """
        gidx = np.arange(size, dtype=np.int64)
        owners, _ = dist.owner_of_flat(gidx)
        proc = current_process()
        proc.charge_deref_regular(size)
        proc.charge_mem(16 * size)
        return cls(IrregularDist(owners, dist.nprocs))

    @property
    def size(self) -> int:
        return self.dist.size

    @property
    def nprocs(self) -> int:
        return self.dist.nprocs

    @property
    def nbytes(self) -> int:
        """Memory footprint per rank (replicated: owner + offset words)."""
        return 16 * self.dist.size

    def dereference(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Owner rank and local offset of each global index (charged)."""
        gidx = np.asarray(gidx, dtype=np.int64)
        current_process().charge_deref_irregular(len(gidx))
        return self.dist.owner_of_flat(gidx)

    def local_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank`` (ascending; uncharged metadata)."""
        return self.dist.owned_global(rank)

    def __repr__(self) -> str:
        return f"TranslationTable(size={self.size}, nprocs={self.nprocs})"


class PagedTranslationTable:
    """Translation table with pages block-distributed across the ranks.

    Rank ``r`` stores the owner/offset entries for global indices in its
    page interval.  :meth:`dereference` is collective: queries are routed
    to page owners, answered there, and returned — trading one
    request/reply communication round for O(size/P) instead of O(size)
    memory per rank.
    """

    def __init__(self, comm: Communicator, owners: np.ndarray):
        owners = np.asarray(owners, dtype=np.int64)
        self.comm = comm
        self.size = len(owners)
        self.nprocs = comm.size
        self._page = -(-self.size // comm.size) if comm.size else self.size
        # Build the full dist once (host-side construction), keep my page.
        full = IrregularDist(owners, comm.size)
        lo = comm.rank * self._page
        hi = min(self.size, lo + self._page)
        gidx = np.arange(lo, hi, dtype=np.int64)
        my_owners, my_offsets = full.owner_of_flat(gidx)
        self._lo = lo
        self._my_owners = my_owners
        self._my_offsets = my_offsets
        self._local_sizes = [full.local_size(r) for r in range(comm.size)]
        current_process().charge_mem(16 * (hi - lo))

    @property
    def nbytes(self) -> int:
        """Per-rank memory: one page only."""
        return 16 * len(self._my_owners)

    def local_size(self, rank: int) -> int:
        return self._local_sizes[rank]

    def dereference(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Collective paged dereference (all ranks must call).

        Queries hitting the local page are answered locally; others are
        shipped to the page owner, looked up there (charged there), and
        shipped back.
        """
        comm = self.comm
        proc = current_process()
        gidx = np.asarray(gidx, dtype=np.int64)
        pages = np.clip(gidx // self._page if self._page else 0, 0, comm.size - 1)
        requests: dict[int, np.ndarray] = {}
        order = np.argsort(pages, kind="stable")
        sorted_pages = pages[order]
        uniq, starts = np.unique(sorted_pages, return_index=True)
        bounds = np.append(starts, len(sorted_pages))
        for i, p in enumerate(uniq):
            requests[int(p)] = gidx[order[bounds[i] : bounds[i + 1]]]
        incoming = comm.alltoall_sparse(requests)
        replies: dict[int, tuple] = {}
        for src, queried in incoming.items():
            local = queried - self._lo
            proc.charge_deref_irregular(len(local))
            replies[src] = (self._my_owners[local], self._my_offsets[local])
        answered = comm.alltoall_sparse(replies)
        ranks = np.empty(len(gidx), dtype=np.int64)
        offsets = np.empty(len(gidx), dtype=np.int64)
        pos = 0
        for i, p in enumerate(uniq):
            n = bounds[i + 1] - bounds[i]
            r, o = answered[int(p)]
            ranks[order[bounds[i] : bounds[i + 1]]] = r
            offsets[order[bounds[i] : bounds[i + 1]]] = o
            pos += n
        return ranks, offsets
