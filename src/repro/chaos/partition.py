"""Irregular partitioners.

Chaos programs choose data distributions with domain partitioners; the
output is a per-element *owner map* feeding a translation table.  Besides
the trivial block/cyclic/random maps, :func:`rcb_owners` implements
recursive coordinate bisection, the standard geometric partitioner for
unstructured meshes — it is what keeps the irregular sweep's halo (and
hence executor communication) proportional to partition surface rather
than volume.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "block_owners",
    "cyclic_owners",
    "random_owners",
    "rcb_owners",
    "bfs_owners",
]


def block_owners(n: int, nprocs: int) -> np.ndarray:
    """Contiguous equal blocks of global indices."""
    b = -(-n // nprocs)
    return np.arange(n, dtype=np.int64) // b


def cyclic_owners(n: int, nprocs: int) -> np.ndarray:
    """Round-robin assignment."""
    return np.arange(n, dtype=np.int64) % nprocs


def random_owners(n: int, nprocs: int, seed: int = 0) -> np.ndarray:
    """Uniform random owners (worst-case locality; every rank non-empty
    for n >= nprocs, by construction)."""
    rng = np.random.default_rng(seed)
    owners = rng.integers(0, nprocs, size=n).astype(np.int64)
    if n >= nprocs:
        # Guarantee no empty rank so local_size invariants hold trivially.
        owners[rng.permutation(n)[:nprocs]] = np.arange(nprocs)
    return owners


def rcb_owners(
    coords: np.ndarray, nprocs: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Recursive coordinate bisection of points into ``nprocs`` parts.

    ``coords`` is (n, d).  Splits the current point set at the (weighted)
    median of its widest coordinate axis, sending a
    ``ceil(parts/2)/parts`` share of the total *weight* to the first half
    — handling non-power-of-two processor counts and per-point work
    weights (e.g. node degree) with balanced part loads.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2:
        raise ValueError("coords must be (n, d)")
    n = len(coords)
    if weights is None:
        w = np.ones(n)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError("weights must have one entry per point")
        if (w < 0).any():
            raise ValueError("weights must be nonnegative")
    owners = np.zeros(n, dtype=np.int64)

    def split(index: np.ndarray, first: int, parts: int) -> None:
        if parts == 1:
            owners[index] = first
            return
        pts = coords[index]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        left_parts = (parts + 1) // 2
        order = np.argsort(pts[:, axis], kind="stable")
        cum = np.cumsum(w[index][order])
        target = cum[-1] * left_parts / parts
        k = int(np.searchsorted(cum, target))
        k = min(max(k, 1), len(index) - 1)
        split(index[order[:k]], first, left_parts)
        split(index[order[k:]], first + left_parts, parts - left_parts)

    split(np.arange(n, dtype=np.int64), 0, nprocs)
    return owners


def bfs_owners(
    npoints: int,
    ia: np.ndarray,
    ib: np.ndarray,
    nparts: int,
    seed: int = 0,
) -> np.ndarray:
    """Graph-based partitioner: capacity-bounded multi-source BFS growth.

    Grows ``nparts`` regions over the mesh *connectivity* (rather than
    coordinates, which :func:`rcb_owners` uses): random seeds claim
    unassigned neighbors breadth-first until each part reaches its
    capacity ``ceil(npoints/nparts)``.  Leftover (disconnected) points go
    to the smallest parts.  Produces contiguous parts with small edge cut
    for well-shaped meshes — a stand-in for the graph partitioners Chaos
    applications used.
    """
    ia = np.asarray(ia, dtype=np.int64)
    ib = np.asarray(ib, dtype=np.int64)
    if nparts < 1:
        raise ValueError("nparts must be positive")
    if nparts == 1:
        return np.zeros(npoints, dtype=np.int64)

    # CSR adjacency (undirected).
    heads = np.concatenate([ia, ib])
    tails = np.concatenate([ib, ia])
    order = np.argsort(heads, kind="stable")
    heads, tails = heads[order], tails[order]
    starts = np.searchsorted(heads, np.arange(npoints + 1))

    rng = np.random.default_rng(seed)
    owners = np.full(npoints, -1, dtype=np.int64)
    capacity = -(-npoints // nparts)
    sizes = np.zeros(nparts, dtype=np.int64)
    seeds = rng.permutation(npoints)[:nparts]
    from collections import deque

    queues = [deque([int(s)]) for s in seeds]
    for part, s in enumerate(seeds):
        if owners[s] == -1:
            owners[s] = part
            sizes[part] += 1
    active = True
    while active:
        active = False
        for part in range(nparts):
            q = queues[part]
            # Claim one frontier node per round (keeps growth balanced).
            while q and sizes[part] < capacity:
                v = q.popleft()
                if owners[v] != -1 and owners[v] != part:
                    continue
                grew = False
                for u in tails[starts[v] : starts[v + 1]]:
                    if owners[u] == -1:
                        owners[u] = part
                        sizes[part] += 1
                        q.append(int(u))
                        grew = True
                        if sizes[part] >= capacity:
                            break
                if grew:
                    active = True
                    break
    # Disconnected leftovers: round-robin onto the smallest parts.
    leftover = np.flatnonzero(owners == -1)
    for v in leftover:
        part = int(np.argmin(sizes))
        owners[v] = part
        sizes[part] += 1
    return owners
