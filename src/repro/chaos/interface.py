"""Meta-Chaos interface functions for Chaos (§4.1.3).

Dereferencing goes through the translation table and is charged the full
per-element table-lookup cost; enumerating locally-owned elements of an
IndexRegion is one membership scan of the region's index list against the
local table plus a lookup per owned element — the "twice" of the
duplication method's cost story comes from this adapter being consulted
once per element in each role.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.chaos.array import ChaosArray
from repro.core.registry import LibraryAdapter, register_adapter
from repro.core.setofregions import SetOfRegions
from repro.distrib.base import Distribution
from repro.vmachine.process import current_process

__all__ = ["ChaosAdapter"]


class ChaosAdapter(LibraryAdapter):
    """Interface functions for ``"chaos"``-distributed arrays."""

    name = "chaos"

    def dist_of(self, handle: Any) -> Distribution:
        return handle.dist

    def shape_of(self, handle: Any) -> tuple[int, ...]:
        if isinstance(handle, ChaosArray):
            return handle.global_shape
        return handle.shape

    def local_data(self, array: Any) -> np.ndarray:
        if not isinstance(array, ChaosArray):
            raise TypeError("a local ChaosArray is required for data access")
        return array.local

    def adopt_local(self, array: Any, values: np.ndarray) -> bool:
        array.local = values
        return True

    def itemsize_of(self, handle: Any) -> int:
        return handle.itemsize

    def charge_deref(self, n: int) -> None:
        current_process().charge_deref_irregular(n)

    def local_elements(
        self, handle: Any, sor: SetOfRegions, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """My elements of the SetOfRegions: one hashed membership scan of
        the region index lists, then a table lookup per owned element."""
        proc = current_process()
        shape = self.shape_of(handle)
        dist = self.dist_of(handle)
        gidx = sor.global_flat(shape)
        proc.charge_hash(len(gidx))
        mask = dist.owners[gidx] == rank if hasattr(dist, "owners") else None
        if mask is None:
            ranks, offsets = dist.owner_of_flat(gidx)
            self.charge_deref(len(gidx))
            mask = ranks == rank
            return np.flatnonzero(mask).astype(np.int64), offsets[mask]
        positions = np.flatnonzero(mask).astype(np.int64)
        self.charge_deref(len(positions))
        offsets = dist.offset_within_owner(gidx[positions])
        return positions, offsets


register_adapter(ChaosAdapter())
