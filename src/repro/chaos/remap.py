"""Redistribution (remapping) of irregular arrays.

Adaptive irregular applications repartition as the computation evolves
(Chaos's "runtime support for compiling adaptive irregular programs").
:func:`remap` moves a ChaosArray's data onto a new distribution — an
identity-mapped pointwise copy schedule between the old and new
translation tables — and returns the new array.  The schedule is exposed
so repeated remaps between the same pair of distributions reuse it.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.array import ChaosArray
from repro.chaos.schedule import ChaosCopySchedule, build_chaos_copy_schedule
from repro.chaos.translation import TranslationTable

__all__ = ["build_remap_schedule", "remap"]


def build_remap_schedule(
    array: ChaosArray, new_owners: np.ndarray
) -> tuple[ChaosCopySchedule, TranslationTable]:
    """Inspector: schedule moving ``array`` onto ``new_owners`` (collective)."""
    new_owners = np.asarray(new_owners, dtype=np.int64)
    if len(new_owners) != array.size:
        raise ValueError(
            f"new owner map has {len(new_owners)} entries for a "
            f"{array.size}-element array"
        )
    new_table = TranslationTable.from_owners(new_owners, array.comm.size)
    identity = np.arange(array.size, dtype=np.int64)
    sched = build_chaos_copy_schedule(
        array.comm, array.table, identity, new_table, identity
    )
    return sched, new_table


def remap(
    array: ChaosArray,
    new_owners: np.ndarray,
    schedule: ChaosCopySchedule | None = None,
    new_table: TranslationTable | None = None,
) -> ChaosArray:
    """Executor: return a new array with the same values, redistributed.

    Pass a previously built ``(schedule, new_table)`` pair to skip the
    inspector (e.g. when ping-ponging between two partitions).
    """
    if schedule is None or new_table is None:
        schedule, new_table = build_remap_schedule(array, new_owners)
    out = ChaosArray(
        array.comm,
        new_table,
        np.zeros(new_table.dist.local_size(array.comm.rank), dtype=array.dtype),
    )
    schedule.execute(array.local, out.local, array.comm)
    return out
