"""Distributed sparse matrix-vector product (the classic Chaos workload).

Chaos grew out of exactly this computation: ``y = A @ x`` with a sparse
matrix whose rows are irregularly distributed and whose column accesses
indirect into a distributed vector.  :class:`DistributedCSR` stores each
rank's rows in CSR form; the constructor runs the inspector
(:func:`~repro.chaos.schedule.build_gather_schedule` localizes the column
indices once) and :meth:`spmv` is the executor — gather the needed ``x``
entries, then a purely local CSR kernel.

The row distribution and the vector distribution are independent (matching
Chaos practice: rows partitioned for load balance, the vector for
locality); both are ordinary owner maps.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.array import ChaosArray
from repro.chaos.schedule import build_gather_schedule
from repro.vmachine.comm import Communicator
from repro.vmachine.process import current_process

__all__ = ["DistributedCSR"]


class DistributedCSR:
    """One rank's rows of an irregularly row-distributed CSR matrix."""

    def __init__(
        self,
        x_layout: ChaosArray,
        my_rows: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        """Collective.  ``my_rows`` are this rank's global row ids;
        ``indptr``/``indices``/``data`` is their local CSR (column indices
        are *global*).  ``x_layout`` fixes the distribution the operand
        vector must carry; the inspector runs here, once.
        """
        if len(indptr) != len(my_rows) + 1:
            raise ValueError("indptr must have len(my_rows)+1 entries")
        if len(indices) != len(data):
            raise ValueError("indices and data lengths differ")
        self.my_rows = np.asarray(my_rows, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.x_dist = x_layout.dist
        # Inspector: localize the column references against x's layout.
        self.schedule, self.local_cols = build_gather_schedule(
            x_layout, np.asarray(indices, dtype=np.int64)
        )

    @classmethod
    def from_global(
        cls,
        comm: Communicator,
        dense_or_csr,
        row_owners: np.ndarray,
        x_layout: ChaosArray,
    ) -> "DistributedCSR":
        """Build from a replicated matrix (dense ndarray or scipy CSR).

        Each rank keeps the rows assigned to it by ``row_owners``.
        """
        try:  # scipy sparse input
            full = dense_or_csr.tocsr()
            indptr, indices, data = full.indptr, full.indices, full.data
            nrows = full.shape[0]
        except AttributeError:  # dense ndarray
            dense = np.asarray(dense_or_csr, dtype=np.float64)
            nrows = dense.shape[0]
            mask = dense != 0.0
            counts = mask.sum(axis=1)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            indices = np.nonzero(mask)[1]
            data = dense[mask]
        row_owners = np.asarray(row_owners, dtype=np.int64)
        if len(row_owners) != nrows:
            raise ValueError("row_owners must have one entry per matrix row")
        mine = np.flatnonzero(row_owners == comm.rank)
        # Slice my rows' CSR pieces out of the global structure.
        lengths = indptr[mine + 1] - indptr[mine]
        my_indptr = np.concatenate(([0], np.cumsum(lengths)))
        gather_idx = np.concatenate(
            [np.arange(indptr[r], indptr[r + 1]) for r in mine]
        ) if len(mine) else np.zeros(0, dtype=np.int64)
        return cls(
            x_layout,
            mine,
            my_indptr,
            np.asarray(indices)[gather_idx],
            np.asarray(data)[gather_idx],
        )

    @property
    def nrows_local(self) -> int:
        return len(self.my_rows)

    @property
    def nnz_local(self) -> int:
        return len(self.data)

    def spmv(self, x: ChaosArray, y: ChaosArray | None = None) -> np.ndarray:
        """Executor: ``y_local = (A @ x)[my_rows]`` (collective).

        ``x`` must carry the layout given at construction.  Returns the
        local result rows (aligned with ``my_rows``); when ``y`` is given
        its entries at ``my_rows``' owners are *not* updated — row results
        are owned by the row's rank by construction, so the caller decides
        where they go.
        """
        if x.dist != self.x_dist:
            raise ValueError("operand vector does not match the inspected layout")
        buffer = self.schedule.gather(x)
        if self.nnz_local == 0 or self.nrows_local == 0:
            return np.zeros(self.nrows_local)
        vals = buffer[self.local_cols] * self.data
        # Segmented row sums via prefix sums: exact for empty rows and
        # free of np.add.reduceat's boundary quirks.
        csum = np.concatenate(([0.0], np.cumsum(vals)))
        out = csum[self.indptr[1:]] - csum[self.indptr[:-1]]
        current_process().charge_flops(2 * self.nnz_local)
        return out
