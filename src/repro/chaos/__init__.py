"""CHAOS analogue: irregularly distributed arrays and inspector/executor.

CHAOS (Das, Saltz et al.) supports irregular scientific computations on
distributed-memory machines:

- *translation tables* record, pointwise, the owner and local address of
  every element of an irregularly distributed array
  (:mod:`repro.chaos.translation`, replicated or paged across ranks);
- *partitioners* produce irregular distributions from mesh structure
  (:mod:`repro.chaos.partition`);
- the *inspector/executor* model precomputes gather/scatter communication
  schedules for indirection-array accesses
  (:mod:`repro.chaos.schedule`), used by the unstructured sweeps in
  :mod:`repro.chaos.ops`;
- a native pointwise *copy schedule* between two translation-table-managed
  arrays (:func:`~repro.chaos.schedule.build_chaos_copy_schedule`), the
  baseline Meta-Chaos is compared against in paper Table 2.

The Meta-Chaos interface functions are in
:class:`~repro.chaos.interface.ChaosAdapter` (registered as ``"chaos"``).
"""

from repro.chaos.translation import TranslationTable, PagedTranslationTable
from repro.chaos.array import ChaosArray
from repro.chaos.partition import (
    bfs_owners,
    block_owners,
    cyclic_owners,
    random_owners,
    rcb_owners,
)
from repro.chaos.remap import build_remap_schedule, remap
from repro.chaos.schedule import (
    GatherSchedule,
    ChaosCopySchedule,
    build_gather_schedule,
    build_chaos_copy_schedule,
)
from repro.chaos.ops import edge_sweep, EdgeSweep
from repro.chaos.sparse import DistributedCSR
from repro.chaos.interface import ChaosAdapter

__all__ = [
    "bfs_owners",
    "build_remap_schedule",
    "remap",
    "TranslationTable",
    "PagedTranslationTable",
    "ChaosArray",
    "block_owners",
    "cyclic_owners",
    "random_owners",
    "rcb_owners",
    "GatherSchedule",
    "ChaosCopySchedule",
    "build_gather_schedule",
    "build_chaos_copy_schedule",
    "edge_sweep",
    "DistributedCSR",
    "EdgeSweep",
    "ChaosAdapter",
]
