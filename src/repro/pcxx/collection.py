"""Distributed collections of elements (the pC++ data model).

A collection distributes ``n`` elements over the ranks with a cyclic,
block, or explicit layout (pC++ aligns collections to "processor object"
grids; cyclic is its default for load balance).  Methods are invoked
element-parallel, owner-computes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.dataplane import accept_local, read_flat, write_flat
from repro.distrib.cartesian import BLOCK, CYCLIC, CartesianDist, DimDist
from repro.distrib.base import Distribution
from repro.distrib.irregular import IrregularDist
from repro.vmachine.comm import Communicator
from repro.vmachine.process import current_process

__all__ = ["DistributedCollection"]


class DistributedCollection:
    """One rank's slice of a distributed element collection."""

    def __init__(self, comm: Communicator, dist: Distribution, local: np.ndarray):
        if dist.nprocs != comm.size:
            raise ValueError(
                f"distribution spans {dist.nprocs} procs, communicator has {comm.size}"
            )
        expected = dist.local_size(comm.rank)
        if local.size != expected:
            raise ValueError(
                f"rank {comm.rank}: local storage {local.size} != {expected}"
            )
        self.comm = comm
        self.dist = dist
        # Zero-copy: any strided ndarray is first-class local storage.
        self.local = accept_local(local)

    @classmethod
    def create(
        cls,
        comm: Communicator,
        n: int,
        layout: str = "cyclic",
        owners: np.ndarray | None = None,
        dtype=np.float64,
    ) -> "DistributedCollection":
        """Collection of ``n`` zero elements.

        ``layout`` is ``"cyclic"`` (pC++ default), ``"block"``, or
        ``"explicit"`` with an ``owners`` map.
        """
        if layout == "cyclic":
            dist: Distribution = CartesianDist((DimDist(CYCLIC if comm.size > 1 else "collapsed", n, comm.size),))
        elif layout == "block":
            dist = CartesianDist((DimDist(BLOCK if comm.size > 1 else "collapsed", n, comm.size),))
        elif layout == "explicit":
            if owners is None:
                raise ValueError("explicit layout needs an owners map")
            dist = IrregularDist(owners, comm.size)
        else:
            raise ValueError(f"unknown layout {layout!r}")
        return cls(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))

    @classmethod
    def from_global(
        cls, comm: Communicator, full: np.ndarray, layout: str = "cyclic",
        owners: np.ndarray | None = None,
    ) -> "DistributedCollection":
        coll = cls.create(comm, len(full), layout, owners, dtype=full.dtype)
        coll.local[:] = full[coll.my_globals()]
        return coll

    # -- views -----------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.dist.size

    @property
    def global_shape(self) -> tuple[int, ...]:
        return (self.dist.size,)

    @property
    def dtype(self):
        return self.local.dtype

    @property
    def itemsize(self) -> int:
        return self.local.dtype.itemsize

    def my_globals(self) -> np.ndarray:
        return self.dist.owned_global(self.comm.rank)

    # -- element-parallel methods ---------------------------------------------------

    def apply(self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
              flops_per_elem: float = 1.0) -> None:
        """Element-parallel method invocation: ``e = fn(global_index, e)``."""
        write_flat(self.local, fn(self.my_globals(), read_flat(self.local)))
        current_process().charge_flops(flops_per_elem * self.local.size)

    def reduce(self, op: Callable[[float, float], float], initial: float = 0.0) -> float:
        """Collection-wide reduction (collective, returns on every rank)."""
        import functools

        local_val = functools.reduce(op, read_flat(self.local).tolist(), initial)
        current_process().charge_flops(self.local.size)
        return self.comm.allreduce(local_val, op)

    def gather_global(self) -> np.ndarray | None:
        """Collect all elements on rank 0 (testing oracle)."""
        pieces = self.comm.gather((self.comm.rank, read_flat(self.local).copy()))
        if pieces is None:
            return None
        out = np.zeros(self.size, dtype=self.dtype)
        for rank, local in pieces:
            out[self.dist.owned_global(rank)] = local
        return out

    def __repr__(self) -> str:
        return (
            f"DistributedCollection(n={self.size}, "
            f"rank={self.comm.rank}/{self.comm.size})"
        )
