"""pC++/Tulip analogue: distributed element collections.

pC++ (Bodin, Beckman, Gannon et al.) is an object-parallel C++ dialect
whose runtime, Tulip, manages *collections* of elements distributed over
processor objects.  The paper reports that the Indiana group provided the
Meta-Chaos interface functions for pC++ "in a few days" — this subpackage
plays that role: a minimal but real distributed collection
(:class:`~repro.pcxx.collection.DistributedCollection`) plus the adapter
(:class:`~repro.pcxx.interface.PCxxAdapter`, registered as ``"pcxx"``),
demonstrating that a fourth, structurally different library joins the
framework by implementing the same small interface.
"""

from repro.pcxx.collection import DistributedCollection
from repro.pcxx.interface import PCxxAdapter

__all__ = ["DistributedCollection", "PCxxAdapter"]
