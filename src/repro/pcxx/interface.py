"""Meta-Chaos interface functions for pC++/Tulip (§4.1.3).

Tulip dereferences an element through the collection's alignment objects
— a virtual call and a few divisions, cheaper than a Chaos table lookup
but costlier than raw block arithmetic.  The adapter charges a fixed
multiple of the regular dereference rate to reflect that.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.registry import LibraryAdapter, register_adapter
from repro.core.setofregions import SetOfRegions
from repro.distrib.base import Distribution
from repro.pcxx.collection import DistributedCollection
from repro.vmachine.process import current_process

__all__ = ["PCxxAdapter"]

# Tulip element dereference ~ one virtual dispatch + alignment arithmetic.
_TULIP_DEREF_FACTOR = 8.0


class PCxxAdapter(LibraryAdapter):
    """Interface functions for ``"pcxx"`` collections."""

    name = "pcxx"

    def dist_of(self, handle: Any) -> Distribution:
        return handle.dist

    def shape_of(self, handle: Any) -> tuple[int, ...]:
        if isinstance(handle, DistributedCollection):
            return handle.global_shape
        return handle.shape

    def local_data(self, array: Any) -> np.ndarray:
        if not isinstance(array, DistributedCollection):
            raise TypeError("a local DistributedCollection is required")
        return array.local

    def adopt_local(self, array: Any, values: np.ndarray) -> bool:
        array.local = values
        return True

    def itemsize_of(self, handle: Any) -> int:
        return handle.itemsize

    def charge_deref(self, n: int) -> None:
        proc = current_process()
        proc.charge(n * _TULIP_DEREF_FACTOR * proc.cost.profile.deref_regular)

    def local_elements(
        self, handle: Any, sor: SetOfRegions, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scan the region element list against the collection's layout."""
        shape = self.shape_of(handle)
        dist = self.dist_of(handle)
        gidx = sor.global_flat(shape)
        ranks, offsets = dist.owner_of_flat(gidx)
        self.charge_deref(len(gidx))
        mask = ranks == rank
        return np.flatnonzero(mask).astype(np.int64), offsets[mask]


register_adapter(PCxxAdapter())
