"""The replay artifact: one compact, versioned file per recorded run.

Layout (JSON, optionally gzip-compressed when the path ends in ``.gz``)::

    {
      "format": "repro-replay",
      "checksum": "<sha256 of the canonical-JSON body>",
      "body": {
        "version": 1,
        "kind": "vm" | "programs",
        "payloads": bool,          # recv records carry pickled payloads
        "note": str,
        "config": {
          "nprocs": int,
          "profile": str,          # MachineProfile.name
          "programs": [[name, nprocs], ...] | null,
          "recv_timeout_s": float | null,
          "copy_on_send": bool,
          "observe": bool,
          "workload": {"name": str, "params": {...}} | null,
        },
        "env": {"REPRO_*": str, ...},
        "env_fingerprint": str,
        "fault_plan": {...} | null,    # full FaultPlan, incl. seed
        "ranks": [
          {
            "sends":  [[seq, dst, tag, nbytes, clock, digest, receipt], ...],
            "recvs":  [[seq, src, tag, nbytes, arrival, clock, wait,
                        digest(, payload_b64)], ...],
            "probes": "0110...",   # probe outcomes, call order
            "trace":  [[kind, time, rank, peer, tag, nbytes, wait, phase]],
            "clock":  float,
            "value":  str,         # digest of the rank's return value
          }, ...
        ],
        "error": str | null,
      }
    }

``seq`` numbers are **per directed channel**: a send record's ``seq``
counts sends from this rank toward ``dst``; a recv record's ``seq``
counts messages this rank *consumed* from ``src``.  A divergence or an
integrity violation therefore always localizes to ``(rank, src → dst,
seq)``.

Floats round-trip exactly through JSON (Python emits the shortest
repr that parses back to the same double), so "byte-identical clocks"
is a meaningful comparison on loaded artifacts.  Integers of any size
round-trip exactly as well, which matters for wire tags (context blocks
are multiples of ``2**32``).

:func:`load_artifact` never raises on a bad checksum — tamper detection
is :func:`verify_artifact`'s job, which *localizes* damage instead of
merely reporting "something differed": every recv record's payload is
re-digested, so a single flipped byte names its rank, channel and
sequence number.
"""

from __future__ import annotations

import base64
import copy as _copy
import gzip
import hashlib
import json
import pickle
from dataclasses import dataclass
from typing import Any

from repro.replay.fingerprint import env_fingerprint, payload_digest
from repro.vmachine.faults import (
    CrashEvent,
    DeliveryReceipt,
    FaultPlan,
    FaultRates,
    FaultRule,
    OK_RECEIPT,
)

__all__ = [
    "FORMAT",
    "VERSION",
    "ReplayFormatError",
    "IntegrityViolation",
    "faultplan_to_dict",
    "faultplan_from_dict",
    "encode_receipt",
    "decode_receipt",
    "encode_payload",
    "decode_payload",
    "seal_body",
    "checksum_ok",
    "save_artifact",
    "load_artifact",
    "verify_artifact",
]

FORMAT = "repro-replay"
VERSION = 1


class ReplayFormatError(ValueError):
    """The file is not a readable replay artifact of a supported version."""


@dataclass(frozen=True)
class IntegrityViolation:
    """One localized spot of artifact damage.

    ``channel`` is ``(src, dst)`` global ranks and ``seq`` the per-channel
    sequence number for payload damage; both are ``None`` for
    envelope-level damage (a bad body checksum with no localizable
    record).
    """

    kind: str                          # "checksum" | "payload" | "record"
    rank: int | None
    channel: tuple[int, int] | None
    seq: int | None
    detail: str

    def __str__(self) -> str:
        where = ""
        if self.channel is not None:
            where = (
                f" at rank {self.rank}, channel "
                f"{self.channel[0]} -> {self.channel[1]}, seq {self.seq}"
            )
        return f"[{self.kind}]{where}: {self.detail}"


# -- fault-plan serialization ----------------------------------------------


def faultplan_to_dict(plan: FaultPlan | None) -> dict | None:
    """Serialize a :class:`FaultPlan` (its *specification*, not its RNG
    state — per-channel streams re-derive deterministically from the
    seed)."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "enabled": plan.enabled,
        "rules": [
            {
                "rates": {
                    "drop": r.rates.drop,
                    "dup": r.rates.dup,
                    "reorder": r.rates.reorder,
                    "delay": r.rates.delay,
                    "corrupt": r.rates.corrupt,
                    "delay_range_s": list(r.rates.delay_range_s),
                },
                "src": r.src,
                "dst": r.dst,
                "classes": list(r.classes),
            }
            for r in plan.rules
        ],
        "slowdown": {str(k): v for k, v in sorted(plan.slowdown.items())},
        "crashes": [
            {
                "rank": ev.rank,
                "after_sends": ev.after_sends,
                "after_receives": ev.after_receives,
                "at_time_s": ev.at_time_s,
            }
            for ev in plan.crashes
        ],
    }


def faultplan_from_dict(d: dict | None) -> FaultPlan | None:
    if d is None:
        return None
    rules = [
        FaultRule(
            rates=FaultRates(
                drop=r["rates"]["drop"],
                dup=r["rates"]["dup"],
                reorder=r["rates"]["reorder"],
                delay=r["rates"]["delay"],
                corrupt=r["rates"]["corrupt"],
                delay_range_s=tuple(r["rates"]["delay_range_s"]),
            ),
            src=r["src"],
            dst=r["dst"],
            classes=tuple(r["classes"]),
        )
        for r in d["rules"]
    ]
    crashes = [
        CrashEvent(
            rank=c["rank"],
            after_sends=c["after_sends"],
            after_receives=c["after_receives"],
            at_time_s=c["at_time_s"],
        )
        for c in d["crashes"]
    ]
    return FaultPlan(
        seed=d["seed"],
        rules=rules,
        slowdown={int(k): v for k, v in d["slowdown"].items()},
        crashes=crashes,
        enabled=d["enabled"],
    )


# -- per-record encodings ---------------------------------------------------


def encode_receipt(receipt: DeliveryReceipt) -> list | str:
    """Compact receipt encoding; the fault-free fast path is one string."""
    if receipt is OK_RECEIPT or (
        receipt.delivered == 1
        and not receipt.dropped
        and not receipt.corrupted
        and not receipt.held
        and receipt.duplicated == 0
        and receipt.delay_s == 0.0
    ):
        return "ok"
    return [
        receipt.delivered,
        int(receipt.dropped),
        int(receipt.corrupted),
        int(receipt.held),
        receipt.duplicated,
        receipt.delay_s,
    ]


def decode_receipt(enc: list | str) -> DeliveryReceipt:
    if enc == "ok":
        return OK_RECEIPT
    delivered, dropped, corrupted, held, duplicated, delay_s = enc
    return DeliveryReceipt(
        delivered=delivered,
        dropped=bool(dropped),
        corrupted=bool(corrupted),
        held=bool(held),
        duplicated=duplicated,
        delay_s=delay_s,
    )


def encode_payload(payload: Any) -> str | None:
    """Pickle a payload snapshot as base64 text, or None when impossible.

    The payload is deep-copied first: on the zero-copy transport the live
    object may be backed by a pooled staging buffer (whose lease the deep
    copy severs) or mutated later by the application; the snapshot is the
    bytes *as consumed*.
    """
    try:
        snap = _copy.deepcopy(payload)
        return base64.b64encode(pickle.dumps(snap, protocol=4)).decode("ascii")
    except Exception:
        return None


def decode_payload(encoded: str) -> Any:
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


# -- envelope ---------------------------------------------------------------


def _canonical(body: dict) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def seal_body(body: dict) -> dict:
    """Wrap a body in the checksummed envelope."""
    return {
        "format": FORMAT,
        "checksum": hashlib.sha256(_canonical(body)).hexdigest(),
        "body": body,
    }


def checksum_ok(artifact: dict) -> bool:
    """Does the envelope checksum match the body it wraps?"""
    want = artifact.get("checksum")
    body = artifact.get("body")
    if want is None or body is None:
        return False
    return hashlib.sha256(_canonical(body)).hexdigest() == want


def save_artifact(artifact: dict, path: str) -> str:
    """Write the artifact (gzip when ``path`` ends in ``.gz``)."""
    data = json.dumps(artifact, separators=(",", ":")).encode("utf-8")
    if str(path).endswith(".gz"):
        with gzip.open(path, "wb") as f:
            f.write(data)
    else:
        with open(path, "wb") as f:
            f.write(data)
    return str(path)


def load_artifact(path: str) -> dict:
    """Read an artifact.  Checksum mismatches do NOT raise here —
    :func:`verify_artifact` localizes damage; this only rejects files
    that are not replay artifacts at all."""
    opener = gzip.open if str(path).endswith(".gz") else open
    try:
        with opener(path, "rb") as f:
            artifact = json.loads(f.read().decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise ReplayFormatError(f"{path}: not a replay artifact: {exc}") from exc
    if not isinstance(artifact, dict) or artifact.get("format") != FORMAT:
        raise ReplayFormatError(f"{path}: not a {FORMAT!r} artifact")
    version = artifact.get("body", {}).get("version")
    if version != VERSION:
        raise ReplayFormatError(
            f"{path}: unsupported artifact version {version!r} "
            f"(this build reads version {VERSION})"
        )
    return artifact


def verify_artifact(artifact: dict) -> list[IntegrityViolation]:
    """Check artifact integrity, localizing damage to (rank, channel, seq).

    Two layers:

    1. the envelope checksum over the canonical body — catches *any*
       single-byte tamper, but cannot say where;
    2. every recv record's stored payload is re-digested against the
       digest recorded at capture time — a flipped payload byte (or a
       payload that no longer unpickles) names its exact rank, channel
       ``src -> dst`` and per-channel sequence number.
    """
    violations: list[IntegrityViolation] = []
    if not checksum_ok(artifact):
        violations.append(
            IntegrityViolation(
                "checksum", None, None, None,
                "body checksum mismatch: the artifact was modified after "
                "sealing",
            )
        )
    body = artifact.get("body", {})
    for rank, entry in enumerate(body.get("ranks", [])):
        for rec in entry.get("recvs", []):
            if len(rec) < 9:
                continue  # recorded without payloads
            seq, src = rec[0], rec[1]
            want = rec[7]
            encoded = rec[8]
            channel = (src, rank)
            if encoded is None:
                violations.append(
                    IntegrityViolation(
                        "record", rank, channel, seq,
                        "payload could not be captured at record time",
                    )
                )
                continue
            try:
                payload = decode_payload(encoded)
            except Exception as exc:
                violations.append(
                    IntegrityViolation(
                        "payload", rank, channel, seq,
                        f"stored payload no longer decodes: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            got = payload_digest(payload)
            if got != want:
                violations.append(
                    IntegrityViolation(
                        "payload", rank, channel, seq,
                        f"payload digest {got} != recorded {want}",
                    )
                )
    return violations


# -- body assembly (used by the Recorder) -----------------------------------


def build_body(
    *,
    kind: str,
    config: dict,
    env: dict[str, str],
    fault_plan_dict: dict | None,
    payloads: bool,
    note: str,
    ranks: list[dict],
    error: str | None,
) -> dict:
    return {
        "version": VERSION,
        "kind": kind,
        "payloads": payloads,
        "note": note,
        "config": config,
        "env": env,
        "env_fingerprint": env_fingerprint(env),
        "fault_plan": fault_plan_dict,
        "ranks": ranks,
        "error": error,
    }
