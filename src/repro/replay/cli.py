"""Command-line record/replay drivers (wired into ``python -m repro``).

``record`` runs a named workload under a recorder and writes the sealed
artifact; ``replay`` verifies an artifact's integrity and re-executes it
(all ranks, or one rank in isolation with ``--rank``).

Exit codes: 0 — byte-identical (or integrity OK with ``--verify-only``);
1 — divergence or integrity violation (localized to rank/channel/seq);
2 — usage or format error.
"""

from __future__ import annotations

import json

from repro.replay.artifact import (
    ReplayFormatError,
    load_artifact,
    verify_artifact,
)

__all__ = ["cmd_record", "cmd_replay", "add_record_args", "add_replay_args"]


def _parse_param(item: str) -> tuple[str, object]:
    if "=" not in item:
        raise ValueError(f"--param needs key=value, got {item!r}")
    key, raw = item.split("=", 1)
    try:
        return key, json.loads(raw)
    except ValueError:
        return key, raw


def add_record_args(parser) -> None:
    parser.add_argument(
        "--workload", required=True,
        help="named workload to run (see --workload help: copy, coupled)",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter override (repeatable); values parse as "
             "JSON, falling back to strings",
    )
    parser.add_argument(
        "--out", required=True,
        help="artifact path (.json or .json.gz)",
    )
    parser.add_argument(
        "--payloads", action="store_true",
        help="capture full recv payloads (required for --rank isolation "
             "replay; larger artifacts)",
    )
    parser.add_argument("--note", default="", help="free-form annotation")


def cmd_record(args) -> int:
    from repro.replay.recorder import Recorder
    from repro.replay.workloads import run_workload
    from repro.vmachine.machine import SPMDError

    try:
        params = dict(_parse_param(p) for p in args.param)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    recorder = Recorder(payloads=args.payloads, note=args.note)
    try:
        run_workload(args.workload, params, recorder)
        outcome = "ok"
    except SPMDError as exc:
        # A failing run is still a recording — that is the point.
        outcome = f"failed ({len(exc.errors)} rank(s)); recorded anyway"
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if recorder.artifact is None:
        print("error: the run produced no artifact (it died before the "
              "machine finalized recording)")
        return 2
    path = recorder.save(args.out)
    body = recorder.artifact["body"]
    nmsg = sum(len(r["recvs"]) for r in body["ranks"])
    print(
        f"recorded {args.workload} ({outcome}): {body['config']['nprocs']} "
        f"rank(s), {nmsg} message(s), payloads="
        f"{'yes' if args.payloads else 'no'} -> {path}"
    )
    return 0


def add_replay_args(parser) -> None:
    parser.add_argument("artifact", help="replay artifact (.json[.gz])")
    parser.add_argument(
        "--rank", type=int, default=None,
        help="single-rank isolation replay of this global rank "
             "(peers served from the log)",
    )
    parser.add_argument(
        "--verify-only", action="store_true",
        help="only check artifact integrity (checksum + per-record payload "
             "digests); do not re-execute",
    )


def cmd_replay(args) -> int:
    from repro.replay.replayer import ReplayLogExhausted, replay_full, replay_rank

    try:
        artifact = load_artifact(args.artifact)
    except ReplayFormatError as exc:
        print(f"error: {exc}")
        return 2

    violations = verify_artifact(artifact)
    if violations:
        print(f"{args.artifact}: {len(violations)} integrity violation(s):")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"{args.artifact}: integrity OK")
    if args.verify_only:
        return 0

    try:
        if args.rank is not None:
            report = replay_rank(artifact, args.rank)
        else:
            report = replay_full(artifact)
    except (ValueError, ReplayLogExhausted) as exc:
        print(f"error: {exc}")
        return 2
    print(report.summary())
    return 0 if report.identical else 1
