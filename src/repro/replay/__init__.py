"""Deterministic record/replay of whole virtual-machine runs.

The virtual machine is deterministic by construction (logical clocks,
seeded fault draws, fixed thread-per-rank protocols), which makes a much
stronger debugging primitive than "attach a debugger" possible: record a
run's complete provenance once, then *prove* any later run identical —
or pinpoint where it is not.

- :class:`~repro.replay.recorder.Recorder` — captures seeds, fault-plan
  draw schedules, the full per-channel message log (headers + payload
  digests, optionally payloads), probe outcomes, ``REPRO_*`` env, config
  and final clock/value digests into one sealed, versioned artifact.
  Recording charges zero logical-clock time.
- :func:`~repro.replay.replayer.replay_full` — re-execute all ranks and
  assert byte-identical clocks/logs/traces/destination digests.
- :func:`~repro.replay.replayer.replay_rank` — re-execute ONE rank with
  its peers served from the recorded log (debug a P=64 chaos failure on
  a laptop).
- :func:`~repro.replay.artifact.verify_artifact` — tamper detection
  localized to ``(rank, channel, seq)``.
- :func:`~repro.replay.divergence.diff_bodies` — the replay-divergence
  checker backing the CI guard.

CLI: ``python -m repro record|replay``.  Env knob: ``REPRO_RECORD=1``
auto-records any run into an in-memory artifact.
"""

from repro.replay.artifact import (
    IntegrityViolation,
    ReplayFormatError,
    faultplan_from_dict,
    faultplan_to_dict,
    load_artifact,
    save_artifact,
    verify_artifact,
)
from repro.replay.divergence import Divergence, ReplayReport, diff_bodies
from repro.replay.fingerprint import (
    env_fingerprint,
    payload_digest,
    plan_fingerprint,
    replay_handle,
)
from repro.replay.recorder import Recorder
from repro.replay.replayer import (
    ReplayLogExhausted,
    recorded_env,
    replay_full,
    replay_rank,
)

__all__ = [
    "Recorder",
    "replay_full",
    "replay_rank",
    "recorded_env",
    "ReplayLogExhausted",
    "Divergence",
    "ReplayReport",
    "diff_bodies",
    "IntegrityViolation",
    "ReplayFormatError",
    "load_artifact",
    "save_artifact",
    "verify_artifact",
    "faultplan_to_dict",
    "faultplan_from_dict",
    "payload_digest",
    "plan_fingerprint",
    "env_fingerprint",
    "replay_handle",
]
