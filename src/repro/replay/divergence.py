"""Replay-divergence detection: structural diff of two artifact bodies.

:func:`diff_bodies` compares a recorded body against a replayed one and
returns a list of :class:`Divergence` records, each localized as tightly
as the data allows: message-log divergences carry ``(rank, channel,
seq)``; clock/trace/value divergences carry the rank and first differing
index.  Comparisons are exact — floats are compared for bit equality
(JSON round-trips doubles exactly), which is the whole point: the
virtual machine is deterministic by construction, so *any* difference is
a bug, an environment drift, or tampering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Divergence", "ReplayReport", "diff_bodies"]


@dataclass(frozen=True)
class Divergence:
    """One localized difference between a recorded and a replayed run."""

    kind: str                          # "config" | "clock" | "send" | ...
    rank: int | None
    channel: tuple[int, int] | None    # (src, dst) global ranks
    seq: int | None
    field: str
    recorded: object
    replayed: object

    def __str__(self) -> str:
        loc = []
        if self.rank is not None:
            loc.append(f"rank {self.rank}")
        if self.channel is not None:
            loc.append(f"channel {self.channel[0]} -> {self.channel[1]}")
        if self.seq is not None:
            loc.append(f"seq {self.seq}")
        where = f" ({', '.join(loc)})" if loc else ""
        return (
            f"[{self.kind}]{where} {self.field}: "
            f"recorded {self.recorded!r} != replayed {self.replayed!r}"
        )


@dataclass
class ReplayReport:
    """Outcome of one replay comparison."""

    mode: str                          # "full" | "isolate"
    divergences: list[Divergence] = field(default_factory=list)
    ranks_compared: int = 0

    @property
    def identical(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.identical:
            return (
                f"replay ({self.mode}): byte-identical across "
                f"{self.ranks_compared} rank(s)"
            )
        lines = [
            f"replay ({self.mode}): {len(self.divergences)} divergence(s):"
        ]
        lines += [f"  {d}" for d in self.divergences[:50]]
        if len(self.divergences) > 50:
            lines.append(f"  ... and {len(self.divergences) - 50} more")
        return "\n".join(lines)


_SEND_FIELDS = ("seq", "dst", "tag", "nbytes", "clock", "digest", "receipt")
_RECV_FIELDS = ("seq", "src", "tag", "nbytes", "arrival", "clock", "wait",
                "digest")


def _diff_log(
    out: list[Divergence],
    kind: str,
    rank: int,
    recorded: list,
    replayed: list,
    fields: tuple[str, ...],
    peer_index: int,
    channel_of,
) -> None:
    """Diff one rank's send or recv log, localizing the *first* mismatch
    per directed channel (later mismatches on the same channel are almost
    always knock-on effects of the first)."""
    flagged: set[tuple[int, int]] = set()
    # Group both logs per peer so a divergence names its channel even when
    # interleaving across channels shifted.
    rec_by_peer: dict[int, list] = {}
    for r in recorded:
        rec_by_peer.setdefault(r[peer_index], []).append(r)
    rep_by_peer: dict[int, list] = {}
    for r in replayed:
        rep_by_peer.setdefault(r[peer_index], []).append(r)
    for peer in sorted(set(rec_by_peer) | set(rep_by_peer)):
        a = rec_by_peer.get(peer, [])
        b = rep_by_peer.get(peer, [])
        channel = channel_of(peer)
        for i in range(min(len(a), len(b))):
            ra, rb = a[i], b[i]
            # Payload capture is optional; compare only the shared prefix.
            n = min(len(ra), len(rb), len(fields))
            for j in range(n):
                if ra[j] != rb[j]:
                    if channel not in flagged:
                        flagged.add(channel)
                        out.append(Divergence(
                            kind, rank, channel, ra[0], fields[j],
                            ra[j], rb[j],
                        ))
                    break
            if channel in flagged:
                break
        if channel not in flagged and len(a) != len(b):
            out.append(Divergence(
                kind, rank, channel, min(len(a), len(b)), "count",
                len(a), len(b),
            ))


def diff_bodies(
    recorded: dict,
    replayed: dict,
    ranks: list[int] | None = None,
) -> list[Divergence]:
    """Compare two artifact bodies.  ``ranks`` restricts the comparison
    (single-rank isolation); None compares every rank."""
    out: list[Divergence] = []

    # Config / provenance.
    for key in ("kind", "fault_plan", "env_fingerprint"):
        if recorded.get(key) != replayed.get(key):
            out.append(Divergence(
                "config", None, None, None, key,
                recorded.get(key), replayed.get(key),
            ))
    rc, pc = recorded.get("config", {}), replayed.get("config", {})
    for key in ("nprocs", "profile", "programs"):
        if rc.get(key) != pc.get(key):
            out.append(Divergence(
                "config", None, None, None, f"config.{key}",
                rc.get(key), pc.get(key),
            ))

    rec_ranks = recorded.get("ranks", [])
    rep_ranks = replayed.get("ranks", [])
    if ranks is None:
        ranks = list(range(max(len(rec_ranks), len(rep_ranks))))

    for rank in ranks:
        a = rec_ranks[rank] if rank < len(rec_ranks) else None
        b = rep_ranks[rank] if rank < len(rep_ranks) else None
        if a is None or b is None:
            out.append(Divergence(
                "rank", rank, None, None, "present",
                a is not None, b is not None,
            ))
            continue

        if a["clock"] != b["clock"]:
            out.append(Divergence(
                "clock", rank, None, None, "clock", a["clock"], b["clock"],
            ))

        _diff_log(out, "send", rank, a["sends"], b["sends"], _SEND_FIELDS,
                  peer_index=1, channel_of=lambda peer, r=rank: (r, peer))
        _diff_log(out, "recv", rank, a["recvs"], b["recvs"], _RECV_FIELDS,
                  peer_index=1, channel_of=lambda peer, r=rank: (peer, r))

        if a["probes"] != b["probes"]:
            pa, pb = a["probes"], b["probes"]
            i = next(
                (k for k in range(min(len(pa), len(pb))) if pa[k] != pb[k]),
                min(len(pa), len(pb)),
            )
            out.append(Divergence(
                "probe", rank, None, i, "outcome",
                pa[i] if i < len(pa) else None,
                pb[i] if i < len(pb) else None,
            ))

        ta, tb = a["trace"], b["trace"]
        for i in range(min(len(ta), len(tb))):
            if ta[i] != tb[i]:
                out.append(Divergence(
                    "trace", rank, None, i, "event", ta[i], tb[i],
                ))
                break
        else:
            if len(ta) != len(tb):
                out.append(Divergence(
                    "trace", rank, None, min(len(ta), len(tb)), "count",
                    len(ta), len(tb),
                ))

        if a["value"] != b["value"]:
            out.append(Divergence(
                "value", rank, None, None, "digest", a["value"], b["value"],
            ))

    return out
