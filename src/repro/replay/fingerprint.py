"""Content digests and run fingerprints for record/replay.

Everything here is *canonical*: the same logical content always hashes to
the same hex string, across interpreter runs (no salted ``hash()``),
across NumPy memory layouts (arrays are digested in C order), and across
the padding garbage of pooled staging buffers (fused wire buffers are
digested segment by segment, never through their raw backing storage,
whose alignment gaps are uninitialized ``np.empty`` bytes).

These digests are the atoms of the replay artifact: every recorded wire
message carries one, so a single corrupted byte — in a replayed run *or*
in the artifact file itself — is localized to ``(rank, channel, seq)``
instead of surfacing as "something differed".

This module deliberately imports nothing from :mod:`repro.vmachine`, so
the machine layer can import it without cycles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any

import numpy as np

__all__ = [
    "payload_digest",
    "values_digest",
    "env_snapshot",
    "env_fingerprint",
    "plan_fingerprint",
    "replay_handle",
]

#: hex digits kept per digest — 64 bits of sha256, plenty for corruption
#: detection while keeping artifacts compact
DIGEST_LEN = 16


def _feed(h, obj: Any) -> None:
    """Feed one payload object into a hash, canonically and type-tagged."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F" + repr(obj).encode())
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode("utf-8"))
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        h.update(b"Y")
        h.update(bytes(obj))
    elif isinstance(obj, np.ndarray):
        h.update(b"A" + np.dtype(obj.dtype).str.encode()
                 + repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        h.update(b"G" + np.dtype(obj.dtype).str.encode() + obj.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"T" if isinstance(obj, tuple) else b"L")
        h.update(str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(b"D" + str(len(obj)).encode())
        for k, v in obj.items():
            _feed(h, k)
            _feed(h, v)
    elif hasattr(obj, "headers") and hasattr(obj, "segment"):
        # Fused wire buffer (duck-typed to avoid importing repro.core):
        # digest the self-describing headers and each segment's dtype view.
        # Never touch the raw backing store — its alignment padding and
        # arena size-class tail are uninitialized bytes.
        headers = obj.headers
        h.update(b"W" + str(len(headers)).encode())
        for i, hd in enumerate(headers):
            h.update(repr(hd).encode())
            _feed(h, obj.segment(i))
    else:
        # Opaque runtime object (RunEncoded, descriptors, dataclasses).
        # pickle is deterministic for the acyclic, slot/dataclass payloads
        # this transport carries; anything unpicklable degrades to repr.
        h.update(b"P")
        try:
            h.update(pickle.dumps(obj, protocol=4))
        except Exception:
            h.update(f"{type(obj).__name__}:{obj!r}".encode())


def payload_digest(payload: Any) -> str:
    """Canonical content digest of one message payload (hex string)."""
    h = hashlib.sha256()
    _feed(h, payload)
    return h.hexdigest()[:DIGEST_LEN]


def values_digest(value: Any) -> str:
    """Digest of one rank's SPMD return value (same canonical form)."""
    return payload_digest(value)


def env_snapshot() -> dict[str, str]:
    """The ``REPRO_*`` environment knobs, sorted by name."""
    return {
        k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
    }


def env_fingerprint(env: dict[str, str] | None = None) -> str:
    """Stable digest of the ``REPRO_*`` environment."""
    snap = env_snapshot() if env is None else dict(sorted(env.items()))
    h = hashlib.sha256()
    for k, v in snap.items():
        h.update(k.encode() + b"=" + v.encode() + b"\x00")
    return h.hexdigest()[:DIGEST_LEN]


def plan_fingerprint(plan_dict: dict | None) -> str | None:
    """Stable digest of a serialized fault plan (None when faults off)."""
    if plan_dict is None:
        return None
    h = hashlib.sha256()
    _feed(h, plan_dict)
    return h.hexdigest()[:DIGEST_LEN]


def replay_handle(
    nprocs: int,
    profile_name: str,
    fault_plan_dict: dict | None,
    programs: list[tuple[str, int]] | None = None,
) -> dict:
    """The compact fingerprint attached to every run result.

    Even when recording is off, this rides along on
    :class:`~repro.vmachine.machine.SPMDResult` (and on
    :class:`~repro.vmachine.machine.SPMDError`), so a failure report
    carries everything needed to re-create the run's provenance: fault
    seed, fault-plan fingerprint, and the ``REPRO_*`` environment.
    """
    env = env_snapshot()
    handle = {
        "nprocs": nprocs,
        "profile": profile_name,
        "seed": None if fault_plan_dict is None else fault_plan_dict["seed"],
        "fault_plan": plan_fingerprint(fault_plan_dict),
        "env": env,
        "env_fingerprint": env_fingerprint(env),
    }
    if programs is not None:
        handle["programs"] = [[name, n] for name, n in programs]
    return handle
