"""Run recorder: per-rank hook sinks plus artifact assembly.

A :class:`Recorder` is handed to :class:`repro.vmachine.machine.VirtualMachine`
(or :func:`repro.vmachine.program.run_programs`), which attaches one
:class:`RankRecorder` to each :class:`~repro.vmachine.process.Process`.
The transport layer then calls three hooks on the hot path:

- ``pre_send(message)`` — *before* delivery, while the sender still owns
  the payload bytes (on the zero-copy transport the receiver may unpack
  and recycle the staging buffer the instant ``deliver`` returns);
- ``on_send(message, receipt, clock)`` — after the fault plan ruled;
- ``on_recv(message, wire_tag, wait, clock)`` — as a message is consumed;
- ``on_probe(hit)`` — each non-blocking completion/probe outcome.

All hooks are plain Python appends on the calling rank's own thread:
recording charges **zero logical-clock time** and takes no locks, so
recorded runs keep the exact clocks of unrecorded ones.

Probe outcomes matter for single-rank isolation replay: the reliability
layer drains acks and backlog through ``while endpoint.probe(...)``
loops, so a replayer serving a rank from the log must answer each probe
exactly as the original run did — not according to what merely *exists*
in the log's future.
"""

from __future__ import annotations

import threading
import traceback as _traceback
from typing import Any

from repro.replay.artifact import (
    build_body,
    encode_payload,
    encode_receipt,
    save_artifact,
    seal_body,
)
from repro.replay.fingerprint import env_snapshot, payload_digest, values_digest
from repro.vmachine.trace import event_to_tuple

__all__ = ["Recorder", "RankRecorder"]


class RankRecorder:
    """Per-rank event sink.  Single-threaded by construction (one thread
    per rank), so appends need no synchronization."""

    __slots__ = (
        "rank", "payloads", "sends", "recvs", "probes",
        "_send_seq", "_recv_seq", "_pending_digest",
    )

    def __init__(self, rank: int, payloads: bool = False) -> None:
        self.rank = rank
        self.payloads = payloads
        self.sends: list[list] = []
        self.recvs: list[list] = []
        self.probes: list[str] = []
        self._send_seq: dict[int, int] = {}
        self._recv_seq: dict[int, int] = {}
        self._pending_digest: str | None = None

    # -- hooks (hot path, zero clock charge) -------------------------------

    def pre_send(self, message) -> None:
        # Digest now: after delivery the receiver may already have
        # unpacked the fused buffer and released its arena lease.
        self._pending_digest = payload_digest(message.payload)

    def on_send(self, message, receipt, clock: float) -> None:
        dst = message.dest
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        digest = self._pending_digest
        self._pending_digest = None
        self.sends.append(
            [seq, dst, message.tag, message.nbytes, clock, digest,
             encode_receipt(receipt)]
        )

    def on_recv(self, message, wire_tag: int, wait: float,
                clock: float) -> None:
        src = message.source
        seq = self._recv_seq.get(src, 0)
        self._recv_seq[src] = seq + 1
        rec = [seq, src, message.tag, message.nbytes, message.arrival,
               clock, wait, payload_digest(message.payload)]
        if self.payloads:
            rec.append(encode_payload(message.payload))
        self.recvs.append(rec)

    def on_probe(self, hit: bool) -> None:
        self.probes.append("1" if hit else "0")

    # -- assembly ----------------------------------------------------------

    def entry(self, clock: float, trace, value: Any) -> dict:
        return {
            "sends": self.sends,
            "recvs": self.recvs,
            "probes": "".join(self.probes),
            "trace": [event_to_tuple(e) for e in (trace or [])],
            "clock": clock,
            "value": values_digest(value),
        }


class Recorder:
    """Collects every rank's streams and seals them into one artifact.

    Parameters
    ----------
    payloads:
        Capture full recv-side payloads (pickled) in addition to digests.
        Required for single-rank isolation replay; off by default to keep
        artifacts compact.
    note:
        Free-form annotation stored in the artifact.
    """

    def __init__(self, payloads: bool = False, note: str = "") -> None:
        self.payloads = payloads
        self.note = note
        #: set by :func:`repro.replay.workloads.run_workload` so CLI-recorded
        #: artifacts are self-describing (replay needs no extra flags)
        self.workload: dict | None = None
        self.artifact: dict | None = None
        self._ranks: dict[int, RankRecorder] = {}
        self._lock = threading.Lock()

    def rank_recorder(self, rank: int) -> RankRecorder:
        with self._lock:
            rec = self._ranks.get(rank)
            if rec is None:
                rec = self._ranks[rank] = RankRecorder(rank, self.payloads)
            return rec

    def finalize(
        self,
        *,
        kind: str,
        config: dict,
        fault_plan_dict: dict | None,
        clocks: list[float],
        traces: list | None,
        values: list | None,
        error: BaseException | str | None = None,
    ) -> dict:
        """Build and seal the artifact.  Returns the sealed envelope."""
        nprocs = config["nprocs"]
        config = dict(config)
        if self.workload is not None and config.get("workload") is None:
            config["workload"] = self.workload
        ranks = []
        for rank in range(nprocs):
            rec = self._ranks.get(rank)
            if rec is None:
                rec = RankRecorder(rank, self.payloads)
            trace = traces[rank] if traces is not None else []
            value = values[rank] if values is not None else None
            clock = clocks[rank] if rank < len(clocks) else 0.0
            ranks.append(rec.entry(clock, trace, value))
        if isinstance(error, BaseException):
            error = "".join(
                _traceback.format_exception_only(type(error), error)
            ).strip()
        body = build_body(
            kind=kind,
            config=config,
            env=env_snapshot(),
            fault_plan_dict=fault_plan_dict,
            payloads=self.payloads,
            note=self.note,
            ranks=ranks,
            error=error,
        )
        self.artifact = seal_body(body)
        return self.artifact

    def save(self, path: str) -> str:
        if self.artifact is None:
            raise RuntimeError("Recorder.finalize() has not run yet")
        return save_artifact(self.artifact, path)
