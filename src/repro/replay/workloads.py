"""Named, parameterized workloads for ``python -m repro record``.

A workload is a *pure function of its parameters*: building the same
name with the same params yields the same SPMD functions, data, and
fault plan.  That is what makes CLI-recorded artifacts self-describing —
the artifact stores ``{"name", "params"}`` and the replayer rebuilds the
exact run with no side-channel state.

Two workloads ship, mirroring the chaos-matrix test idioms:

- ``copy`` — single program: a BlockParti section → Chaos indexed
  ``mc_copy`` under seeded chaos with reliability on;
- ``coupled`` — two separately-written programs exchanging through a
  :class:`~repro.core.coupling.CoupledExchange` push (optionally a pull
  back) over a faulty inter-program channel.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.vmachine import ProgramSpec, VirtualMachine, run_programs
from repro.vmachine.faults import FaultPlan, FaultRates

__all__ = ["WORKLOADS", "build_workload", "run_workload", "workload_names"]


def _method(name: str):
    from repro.core import ScheduleMethod

    return {
        "cooperation": ScheduleMethod.COOPERATION,
        "duplication": ScheduleMethod.DUPLICATION,
    }[name]


def _policy(name: str):
    from repro.core import ExecutorPolicy

    return {
        "ordered": ExecutorPolicy.ORDERED,
        "overlap": ExecutorPolicy.OVERLAP,
    }[name]


def _fault_plan(params: dict) -> FaultPlan | None:
    rates = FaultRates(
        drop=params["drop"], dup=params["dup"],
        reorder=params["reorder"], delay=params["delay"],
    )
    if not (rates.drop or rates.dup or rates.reorder or rates.delay):
        return None
    return FaultPlan(seed=params["seed"], rates=rates)


def _sors(params: dict):
    """Deterministic source section + destination permutation regions."""
    from repro.core import IndexRegion, SectionRegion, SetOfRegions
    from repro.distrib.section import Section

    rows, cols = params["rows"], params["cols"]
    shape = (rows, cols)
    grid = np.random.default_rng(params["data_seed"]).random(shape)
    slices = (slice(rows // 6, rows - rows // 6), slice(0, cols))
    n = (rows - 2 * (rows // 6)) * cols
    perm = np.random.default_rng(params["perm_seed"]).permutation(n)
    src_sor = SetOfRegions([SectionRegion(Section.from_slices(slices, shape))])
    dst_sor = SetOfRegions([IndexRegion(np.asarray(perm, dtype=np.int64))])
    return grid, perm, src_sor, dst_sor


_COPY_DEFAULTS = {
    "procs": 4, "seed": 31, "method": "cooperation", "policy": "ordered",
    "drop": 0.2, "dup": 0.2, "reorder": 0.2, "delay": 0.2,
    "reliability": True, "rows": 12, "cols": 10,
    "data_seed": 2, "perm_seed": 3,
}


def _build_copy(params: dict) -> dict:
    # Registration side effect: the adapters must exist before schedules.
    import repro.blockparti  # noqa: F401
    import repro.chaos  # noqa: F401
    from repro.blockparti import BlockPartiArray
    from repro.chaos import ChaosArray
    from repro.core import SingleProgramUniverse, mc_compute_schedule, mc_copy

    grid, perm, src_sor, dst_sor = _sors(params)
    method = _method(params["method"])
    policy = _policy(params["policy"])

    def spmd(comm):
        A = BlockPartiArray.from_global(comm, grid)
        B = ChaosArray.zeros(comm, (perm * 7) % comm.size)
        sched = mc_compute_schedule(
            comm, "blockparti", A, src_sor, "chaos", B, dst_sor, method,
        )
        universe = SingleProgramUniverse(comm)
        if params["reliability"]:
            universe.enable_reliability()
        mc_copy(universe, sched, A, B, policy=policy, timeout=30.0)
        return B.gather_global()

    return {
        "kind": "vm",
        "nprocs": params["procs"],
        "fn": spmd,
        "fault_plan": _fault_plan(params),
        "vm_kwargs": {"recv_timeout_s": 30.0},
    }


_COUPLED_DEFAULTS = {
    "psrc": 3, "pdst": 2, "seed": 5, "method": "cooperation",
    "policy": "ordered", "pull_back": False,
    "drop": 0.2, "dup": 0.2, "reorder": 0.2, "delay": 0.2,
    "rows": 12, "cols": 10, "data_seed": 2, "perm_seed": 3,
}


def _build_coupled(params: dict) -> dict:
    import repro.blockparti  # noqa: F401
    import repro.chaos  # noqa: F401
    from repro.blockparti import BlockPartiArray
    from repro.chaos import ChaosArray
    from repro.core import ScheduleMethod, mc_compute_schedule
    from repro.core.coupling import CoupledExchange, coupled_universe

    grid, perm, src_sor, dst_sor = _sors(params)
    method = _method(params["method"])
    policy = _policy(params["policy"])
    shape = grid.shape
    pull_back = params["pull_back"]

    def src_prog(ctx):
        A = BlockPartiArray.from_global(ctx.comm, grid)
        uni = coupled_universe(ctx, "dstp", "src")
        sched = mc_compute_schedule(
            uni, "blockparti", A, src_sor, "chaos", None,
            dst_sor if method is ScheduleMethod.DUPLICATION else None,
            method,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push(A)
        if pull_back:
            A2 = BlockPartiArray.zeros(ctx.comm, shape)
            ex.pull(A2)
            return A2.gather_global()
        return None

    def dst_prog(ctx):
        B = ChaosArray.zeros(ctx.comm, (perm * 3) % ctx.comm.size)
        uni = coupled_universe(ctx, "srcp", "dst")
        sched = mc_compute_schedule(
            uni, "blockparti", None,
            src_sor if method is ScheduleMethod.DUPLICATION else None,
            "chaos", B, dst_sor, method,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push(B)
        out = B.gather_global()
        if pull_back:
            B.local *= 2.0
            ex.pull(B)
        return out

    return {
        "kind": "programs",
        "nprocs": params["psrc"] + params["pdst"],
        "specs": [
            ProgramSpec("srcp", params["psrc"], src_prog),
            ProgramSpec("dstp", params["pdst"], dst_prog),
        ],
        "fault_plan": _fault_plan(params),
        "vm_kwargs": {"recv_timeout_s": 30.0},
    }


WORKLOADS: dict[str, tuple[dict, Callable[[dict], dict]]] = {
    "copy": (_COPY_DEFAULTS, _build_copy),
    "coupled": (_COUPLED_DEFAULTS, _build_coupled),
}


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


def normalize_params(name: str, params: dict | None) -> dict:
    """Merge user params over the workload's defaults (rejecting typos)."""
    try:
        defaults, _ = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None
    merged = dict(defaults)
    for k, v in (params or {}).items():
        if k not in defaults:
            raise ValueError(
                f"workload {name!r} has no parameter {k!r}; "
                f"parameters: {sorted(defaults)}"
            )
        merged[k] = v
    return merged


def build_workload(name: str, params: dict | None = None) -> dict:
    """Build a workload plan: ``{kind, nprocs, fn|specs, fault_plan,
    vm_kwargs}`` — pure in (name, params)."""
    merged = normalize_params(name, params)
    _, builder = WORKLOADS[name]
    plan = builder(merged)
    plan["params"] = merged
    plan["name"] = name
    return plan


def run_workload(name: str, params: dict | None, recorder) -> Any:
    """Execute a workload under a recorder.  The recorder's artifact
    self-describes the workload so ``replay`` needs no extra flags."""
    plan = build_workload(name, params)
    recorder.workload = {"name": name, "params": plan["params"]}
    if plan["kind"] == "vm":
        vm = VirtualMachine(
            plan["nprocs"], faults=plan["fault_plan"], recorder=recorder,
            **plan["vm_kwargs"],
        )
        return vm.run(plan["fn"])
    return run_programs(
        plan["specs"], faults=plan["fault_plan"], recorder=recorder,
        **plan["vm_kwargs"],
    )
