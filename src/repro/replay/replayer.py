"""Replay engines: full-fidelity re-execution and single-rank isolation.

Full-fidelity (:func:`replay_full`) re-runs the *entire* machine — same
workload, same fault plan (per-channel draw streams re-derive from the
recorded seed), same ``REPRO_*`` environment — records the re-run, and
structurally diffs the two artifacts.  The virtual machine is
deterministic by construction, so the diff must be empty; anything else
is localized to ``(rank, channel, seq)`` by
:func:`repro.replay.divergence.diff_bodies`.

Single-rank isolation (:func:`replay_rank`) re-executes ONE rank of a
recorded run — e.g. the one interesting rank of a P=64 chaos failure —
with its peers *served from the log*:

- the rank's mailbox is replaced by a :class:`_LogMailbox` that answers
  every ``receive``/``receive_any_of`` with the next *consumed* message
  from the recorded stream (payloads were captured on the recv side, so
  the rank computes on real bytes), and answers every ``probe`` with the
  recorded outcome stream;
- outbound messages fall into a sink (the fault plan still rules on
  them, so send receipts and crash/slowdown draws re-derive exactly).

Serving probes from the recorded *outcome stream* — rather than from
what happens to sit in the log — is load-bearing: the reliability layer
drains acks and backlog through ``while probe(...)`` loops, and a probe
that could see a logged-but-future message would consume it early,
shifting every subsequent clock.  Faithful re-execution makes the i-th
receive call consume the i-th recorded message (mailbox matching is
per-channel FIFO and ``receive_any_of`` picks the minimum
``(arrival, source, tag)`` — the very message the real run consumed), so
log-order service is exact, not approximate.

Ranks driven by wall-clock-dependent code (the service gateway's asyncio
batch sealing) are *not* isolation-replayable — their control flow is
not a function of the message log.  Server ranks and every SPMD compute
rank are.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import deque

from repro.replay.artifact import (
    decode_payload,
    faultplan_from_dict,
)
from repro.replay.divergence import Divergence, ReplayReport, diff_bodies
from repro.replay.recorder import Recorder
from repro.vmachine.comm import CONTEXT_STRIDE, Communicator, InterComm
from repro.vmachine.cost_model import ALPHA_FARM_ATM, CostModel, IBM_SP2
from repro.vmachine.machine import SPMDError, VirtualMachine
from repro.vmachine.message import Mailbox, Message
from repro.vmachine.process import Process
from repro.vmachine.program import ProgramContext, run_programs

__all__ = [
    "ReplayLogExhausted",
    "replay_full",
    "replay_rank",
    "recorded_env",
]

#: machine profiles addressable by their recorded name
_PROFILES = {IBM_SP2.name: IBM_SP2, ALPHA_FARM_ATM.name: ALPHA_FARM_ATM}


class ReplayLogExhausted(RuntimeError):
    """An isolation-replayed rank diverged from its recorded log.

    Deliberately NOT a :class:`~repro.vmachine.faults.RankLostError`
    subclass: the coupling layer's degradation paths catch rank-loss and
    downgrade it to peer-loss handling, which would silently absorb a
    replay divergence instead of surfacing it.
    """


def _profile(name: str):
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine profile {name!r}; known: {sorted(_PROFILES)}"
        ) from None


@contextlib.contextmanager
def recorded_env(env: dict[str, str]):
    """Temporarily install the recorded ``REPRO_*`` environment.

    Existing ``REPRO_*`` variables are cleared first (absence is part of
    the recorded state), and everything is restored on exit.
    """
    saved = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
    try:
        for k in saved:
            del os.environ[k]
        os.environ.update(env)
        yield
    finally:
        for k in list(os.environ):
            if k.startswith("REPRO_"):
                del os.environ[k]
        os.environ.update(saved)


def _resolve_workload(body: dict, fn=None, args=(), kwargs=None, specs=None):
    """Workload to re-execute: explicit fn/specs win; otherwise the
    artifact's self-described workload is rebuilt from its parameters."""
    kind = body["kind"]
    if kind == "vm" and fn is not None:
        return fn, args, dict(kwargs or {}), None
    if kind == "programs" and specs is not None:
        return None, (), {}, specs
    wl = body["config"].get("workload")
    if wl is None:
        raise ValueError(
            "artifact does not name a workload; pass fn= (kind 'vm') or "
            "specs= (kind 'programs') to re-execute it"
        )
    from repro.replay.workloads import build_workload

    plan = build_workload(wl["name"], wl["params"])
    return plan.get("fn"), plan.get("args", ()), plan.get("kwargs", {}), \
        plan.get("specs")


# -- full-fidelity replay ---------------------------------------------------


def replay_full(
    artifact: dict,
    fn=None,
    args: tuple = (),
    kwargs: dict | None = None,
    specs=None,
) -> ReplayReport:
    """Re-execute every rank of a recorded run and diff against the log.

    Returns a :class:`ReplayReport`; ``report.identical`` asserts
    byte-identical clocks, message logs (headers + payload digests),
    probe streams, traces and per-rank value digests.
    """
    body = artifact["body"]
    config = body["config"]
    fn, args, kwargs, specs = _resolve_workload(body, fn, args, kwargs, specs)
    plan = faultplan_from_dict(body["fault_plan"])
    profile = _profile(config["profile"])
    rec = Recorder(payloads=False, note="replay of recorded run")

    with recorded_env(body["env"]):
        error: BaseException | None = None
        if body["kind"] == "vm":
            vm = VirtualMachine(
                config["nprocs"],
                profile=profile,
                recv_timeout_s=config["recv_timeout_s"],
                copy_on_send=config["copy_on_send"],
                observe=config["observe"],
                faults=plan,
                recorder=rec,
            )
            try:
                vm.run(fn, *args, **kwargs)
            except SPMDError as exc:
                error = exc  # a recorded failure must re-fail identically
        else:
            try:
                run_programs(
                    specs,
                    profile=profile,
                    recv_timeout_s=config["recv_timeout_s"],
                    copy_on_send=config["copy_on_send"],
                    observe=config["observe"],
                    faults=plan,
                    recorder=rec,
                )
            except SPMDError as exc:
                error = exc

    replayed = rec.artifact["body"]
    report = ReplayReport(mode="full", ranks_compared=config["nprocs"])
    report.divergences = diff_bodies(body, replayed)
    if (body["error"] is None) != (error is None):
        report.divergences.append(Divergence(
            "error", None, None, None, "outcome",
            body["error"], None if error is None else str(error)[:200],
        ))
    return report


# -- single-rank isolation replay -------------------------------------------


class _SinkBox:
    """Destination for the replayed rank's outbound messages: peers are
    not executing, so sends (and fault-plan held-message flushes) vanish."""

    def deliver(self, message) -> None:
        pass

    def deliver_many(self, messages) -> None:
        pass

    def wake(self) -> None:
        pass


class _LogMailbox(Mailbox):
    """Mailbox that serves one rank from its recorded streams.

    ``receive``/``receive_any_of`` hand out recorded messages in
    *consumption order* (pattern-checked against the caller's request);
    ``probe`` replays the recorded outcome stream; inbound delivery is a
    no-op (self-sends are already in the recv log).  Never blocks.
    """

    def __init__(self, rank: int, recvs: list, probes: str):
        super().__init__(rank)
        self._log: deque[Message] = deque()
        for recd in recvs:
            encoded = recd[8] if len(recd) > 8 else None
            if encoded is None:
                raise ReplayLogExhausted(
                    f"rank {rank}: recv seq {recd[0]} from {recd[1]} has no "
                    "captured payload — record with payloads=True "
                    "(CLI: --payloads) for isolation replay"
                )
            self._log.append(Message(
                source=recd[1], dest=rank, tag=recd[2],
                payload=decode_payload(encoded),
                arrival=recd[4], nbytes=recd[3],
            ))
        self._probes = probes
        self._probe_cursor = 0

    # -- log service -------------------------------------------------------

    def _next(self, what: str) -> Message:
        if not self._log:
            raise ReplayLogExhausted(
                f"rank {self.rank}: {what} beyond the recorded log "
                "(the replayed execution consumed more messages than the "
                "original run — divergence)"
            )
        return self._log.popleft()

    def deliver(self, message) -> None:
        pass

    def deliver_many(self, messages) -> None:
        pass

    def receive(self, source, tag, timeout=None, tag_range=None, context=""):
        msg = self._next(f"receive(source={source}, tag={tag})")
        if not msg.matches(source, tag, tag_range):
            raise ReplayLogExhausted(
                f"rank {self.rank}: receive(source={source}, tag={tag}) "
                f"does not match the next recorded message "
                f"(source={msg.source}, tag={msg.tag}) — divergence"
            )
        return msg

    def receive_any_of(self, patterns, timeout=None, context=None):
        msg = self._next(f"receive_any_of({len(patterns)} patterns)")
        for k, (source, tag, tag_range) in enumerate(patterns):
            if msg.matches(source, tag, tag_range):
                return k, msg
        raise ReplayLogExhausted(
            f"rank {self.rank}: no pattern of receive_any_of matches the "
            f"next recorded message (source={msg.source}, tag={msg.tag}) "
            "— divergence"
        )

    def probe(self, source, tag, tag_range=None) -> bool:
        i = self._probe_cursor
        if i >= len(self._probes):
            raise ReplayLogExhausted(
                f"rank {self.rank}: probe #{i} beyond the recorded outcome "
                "stream — divergence"
            )
        self._probe_cursor = i + 1
        return self._probes[i] == "1"


def _programs_topology(config: dict):
    """Replicate :func:`run_programs`' deterministic rank/context math
    from the recorded ``[[name, nprocs], ...]`` list."""
    programs = config["programs"]
    blocks: dict[str, list[int]] = {}
    base = 0
    for name, n in programs:
        blocks[name] = list(range(base, base + n))
        base += n
    contexts = {
        name: (i + 1) * CONTEXT_STRIDE for i, (name, _) in enumerate(programs)
    }
    pair_contexts: dict[tuple[str, str], int] = {}
    next_ctx = (len(programs) + 1) * CONTEXT_STRIDE
    for i, (a, _) in enumerate(programs):
        for b, _n in programs[i + 1:]:
            pair_contexts[(a, b)] = next_ctx
            pair_contexts[(b, a)] = next_ctx
            next_ctx += CONTEXT_STRIDE
    return blocks, contexts, pair_contexts


def replay_rank(
    artifact: dict,
    rank: int,
    fn=None,
    args: tuple = (),
    kwargs: dict | None = None,
    specs=None,
) -> ReplayReport:
    """Re-execute ONE rank of a recorded run, peers served from the log.

    Requires an artifact recorded with payload capture.  The rank's
    sends, trace, probes, final clock and value digest are re-derived by
    real execution and diffed against the recording; its receives come
    from the log (bytes as originally consumed) and so compare
    trivially — a divergence therefore always points at this rank's own
    behaviour.
    """
    body = artifact["body"]
    config = body["config"]
    total = config["nprocs"]
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} out of range for nprocs={total}")
    if not body["payloads"]:
        raise ValueError(
            "artifact was recorded without payload capture; isolation "
            "replay needs `payloads=True` at record time (CLI: --payloads)"
        )
    fn, args, kwargs, specs = _resolve_workload(body, fn, args, kwargs, specs)
    plan = faultplan_from_dict(body["fault_plan"])
    profile = _profile(config["profile"])
    entry = body["ranks"][rank]

    proc = Process(rank, total, CostModel(profile))
    proc.mailbox = _LogMailbox(rank, entry["recvs"], entry["probes"])
    proc.trace = []
    if config["recv_timeout_s"] is not None:
        proc.recv_timeout_s = config["recv_timeout_s"]
    proc.copy_on_send = bool(config["copy_on_send"])
    if config["observe"]:
        proc.enable_observability()
    if plan is not None:
        proc.faults = plan
        proc.slowdown = plan.slowdown_for(rank)
    rec = Recorder(payloads=False, note=f"isolation replay of rank {rank}")
    proc.recorder = rec.rank_recorder(rank)

    sink = _SinkBox()
    router = {r: sink for r in range(total)}
    router[rank] = proc.mailbox

    result: dict = {"value": None, "error": None}

    def worker() -> None:
        proc.bind()
        try:
            with recorded_env(body["env"]):
                if body["kind"] == "vm":
                    comm = Communicator(
                        proc, list(range(total)), router, context=0,
                        contention=profile.contention_factor(total),
                    )
                    result["value"] = fn(comm, *args, **kwargs)
                else:
                    blocks, contexts, pair_contexts = (
                        _programs_topology(config)
                    )
                    spec = next(
                        s for s in specs if rank in blocks[s.name]
                    )
                    comm = Communicator(
                        proc, blocks[spec.name], router,
                        context=contexts[spec.name],
                        contention=profile.contention_factor(spec.nprocs),
                    )
                    intercomms = {
                        other.name: InterComm(
                            proc, blocks[spec.name], blocks[other.name],
                            router,
                            context=pair_contexts[(spec.name, other.name)],
                            contention=profile.contention_factor(spec.nprocs),
                        )
                        for other in specs
                        if other.name != spec.name
                    }
                    ctx = ProgramContext(spec.name, comm, intercomms)
                    result["value"] = spec.fn(ctx, *spec.args, **spec.kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported in the diff
            result["error"] = exc
        finally:
            proc.unbind()

    t = threading.Thread(target=worker, name=f"replay-{rank}", daemon=True)
    t.start()
    t.join()

    replayed_entry = rec.rank_recorder(rank).entry(
        proc.clock, proc.trace, result["value"]
    )
    replayed_body = dict(body)
    replayed_ranks = list(body["ranks"])
    replayed_ranks[rank] = replayed_entry
    replayed_body["ranks"] = replayed_ranks

    report = ReplayReport(mode="isolate", ranks_compared=1)
    report.divergences = diff_bodies(body, replayed_body, ranks=[rank])
    err = result["error"]
    if err is not None and body["error"] is None:
        report.divergences.append(Divergence(
            "error", rank, None, None, "outcome",
            None, f"{type(err).__name__}: {err}",
        ))
    return report
