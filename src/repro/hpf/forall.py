"""Owner-computes ``forall`` executors.

The HPF compiler turns ``forall`` statements over aligned arrays into
owner-computes local loops; this module provides the runtime piece:
elementwise execution over arrays sharing one distribution, with and
without access to the global indices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hpf.array import HPFArray
from repro.vmachine.process import current_process

__all__ = ["forall", "forall_indexed"]


def forall(
    out: HPFArray, fn: Callable[..., np.ndarray], *ins: HPFArray, flops_per_elem: float = 1.0
) -> None:
    """``forall (i...) out = fn(ins...)`` over aligned arrays.

    All arrays must share the output's distribution (the compiler would
    have inserted a remap otherwise — that remap is exactly what
    Meta-Chaos or the HPF runtime's own section copy provides).
    """
    for a in ins:
        if not a.aligned_with(out):
            raise ValueError(
                "forall operands must be aligned (same distribution); "
                "remap first (e.g. with Meta-Chaos)"
            )
    out.local[:] = fn(*[a.local for a in ins])
    current_process().charge_flops(flops_per_elem * out.local.size)


def forall_indexed(
    out: HPFArray,
    fn: Callable[..., np.ndarray],
    *ins: HPFArray,
    flops_per_elem: float = 1.0,
) -> None:
    """Like :func:`forall` but ``fn`` also receives the global coordinates.

    ``fn(coords, *locals)`` where ``coords`` is a tuple of flat index
    arrays, one per dimension, aligned with the local elements.
    """
    for a in ins:
        if not a.aligned_with(out):
            raise ValueError("forall operands must be aligned")
    mine = out.dist.owned_global(out.comm.rank)
    coords = np.unravel_index(mine, out.global_shape)
    out.local[:] = fn(coords, *[a.local for a in ins])
    current_process().charge_flops(flops_per_elem * out.local.size)
