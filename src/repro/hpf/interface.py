"""Meta-Chaos interface functions for the HPF runtime (§4.1.3).

Functionally the same closed-form Cartesian dereferencing as Multiblock
Parti — HPF's regular distributions answer ownership questions in O(1)
arithmetic per element — but registered as its own library: the paper's
whole point is that each library plugs in its own implementation of the
same small interface.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.registry import (
    LibraryAdapter,
    cartesian_local_elements,
    register_adapter,
)
from repro.core.setofregions import SetOfRegions
from repro.distrib.base import Distribution
from repro.hpf.array import HPFArray
from repro.vmachine.process import current_process

__all__ = ["HPFAdapter"]


class HPFAdapter(LibraryAdapter):
    """Interface functions for ``"hpf"``-distributed arrays."""

    name = "hpf"

    def dist_of(self, handle: Any) -> Distribution:
        return handle.dist

    def shape_of(self, handle: Any) -> tuple[int, ...]:
        if isinstance(handle, HPFArray):
            return handle.global_shape
        return handle.shape

    def local_data(self, array: Any) -> np.ndarray:
        if not isinstance(array, HPFArray):
            raise TypeError("a local HPFArray is required for data access")
        return array.local

    def adopt_local(self, array: Any, values: np.ndarray) -> bool:
        array.local = values
        return True

    def itemsize_of(self, handle: Any) -> int:
        return handle.itemsize

    def charge_deref(self, n: int) -> None:
        current_process().charge_deref_regular(n)

    def local_elements(
        self, handle: Any, sor: SetOfRegions, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return cartesian_local_elements(
            self.dist_of(handle), self.shape_of(handle), sor, rank,
            charge=self.charge_locate,
        )


register_adapter(HPFAdapter())
