"""HPF runtime analogue: BLOCK/CYCLIC distributed arrays and executors.

Models the runtime layer of a High Performance Fortran compiler: arrays
carry ``!hpf$ distribute`` style per-dimension BLOCK / CYCLIC /
BLOCK_CYCLIC(k) / ``*`` (collapsed) mappings over a processor grid
(:class:`~repro.hpf.array.HPFArray`), data parallel loops run as
owner-computes ``forall`` executors (:mod:`repro.hpf.forall`), and a
distributed matrix-vector product (:mod:`repro.hpf.matvec`) plays the
compute-server role of the paper's client/server experiments (§5.4).

The Meta-Chaos interface functions are
:class:`~repro.hpf.interface.HPFAdapter` (registered as ``"hpf"``), and
:func:`~repro.hpf.sections.create_region_hpf` mirrors the paper's
``CreateRegion_HPF`` constructor (Figure 9).
"""

from repro.hpf.array import HPFArray
from repro.hpf.sections import create_region_hpf, hpf_section
from repro.hpf.forall import forall, forall_indexed
from repro.hpf.matvec import distributed_matvec, local_matvec_time
from repro.hpf.ops import cshift, hpf_dot, hpf_max, hpf_min, hpf_section_copy, hpf_sum
from repro.hpf.align import AlignedDist, Template, align_array
from repro.hpf.interface import HPFAdapter

__all__ = [
    "AlignedDist",
    "Template",
    "align_array",
    "cshift",
    "hpf_dot",
    "hpf_max",
    "hpf_min",
    "hpf_section_copy",
    "hpf_sum",
    "HPFArray",
    "create_region_hpf",
    "hpf_section",
    "forall",
    "forall_indexed",
    "distributed_matvec",
    "local_matvec_time",
    "HPFAdapter",
]
