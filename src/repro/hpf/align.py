"""HPF TEMPLATE / ALIGN directives: affine-aligned distributions.

Real HPF programs rarely distribute every array directly; they declare an
abstract ``TEMPLATE``, distribute *it*, and ``ALIGN`` arrays to template
cells::

    !hpf$ template T(100, 100)
    !hpf$ distribute T(block, block)
    !hpf$ align A(i, j) with T(i + 2, 2*j)       ! offset and stride
    !hpf$ align x(i)    with T(i, *)             ! collapse a template axis

Aligned arrays inherit the template's distribution through the affine map:
element ``A[i0, i1, ...]`` lives where template cell
``(offset[k] + stride[k] * i_axis(k))`` lives.  Ownership of each array
dimension is therefore an *interval* of the dimension's index space
whenever the targeted template axis is BLOCK-distributed — which keeps the
derived :class:`AlignedDist` closed-form (the property the regular
libraries' cheap dereferencing rests on).  CYCLIC template axes are not
supported for alignment targets (their ownership is not an interval);
distribute such arrays directly instead.

Alignment with ``*`` (an unused template axis) is allowed only when that
axis is not distributed — true replication across processor rows would
break the unique-owner model every library here shares.
"""

from __future__ import annotations

import numpy as np

from repro.distrib.base import DistDescriptor, Distribution, register_descriptor_kind
from repro.distrib.cartesian import BLOCK, COLLAPSED, CartesianDist
from repro.hpf.array import HPFArray, _build_dist
from repro.vmachine.comm import Communicator

__all__ = ["Template", "AlignedDist", "align_array"]


class Template:
    """An abstract distributed index space (``!hpf$ template`` +
    ``!hpf$ distribute``)."""

    def __init__(
        self,
        shape: tuple[int, ...],
        specs: tuple[str, ...],
        nprocs: int,
        grid: tuple[int, ...] | None = None,
    ):
        self.dist = _build_dist(shape, specs, nprocs, grid)
        for d in self.dist.dims:
            if d.kind not in (BLOCK, COLLAPSED):
                raise ValueError(
                    "alignment templates support BLOCK/'*' axes only "
                    f"(axis kind {d.kind!r} not alignable)"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return self.dist.global_shape

    @property
    def ndim(self) -> int:
        return len(self.shape)


class AlignedDist(Distribution):
    """Distribution of an array aligned to a template by an affine map.

    ``axes[d]`` is the template axis array dimension ``d`` targets;
    ``offsets[d]``/``strides[d]`` give the affine map
    ``t = offset + stride * i``.  Template axes not targeted by any array
    dimension must be undistributed (grid extent 1).
    """

    def __init__(
        self,
        template: CartesianDist,
        array_shape: tuple[int, ...],
        axes: tuple[int, ...],
        offsets: tuple[int, ...],
        strides: tuple[int, ...],
    ):
        if not (len(array_shape) == len(axes) == len(offsets) == len(strides)):
            raise ValueError("axes/offsets/strides must match the array rank")
        if len(set(axes)) != len(axes):
            raise ValueError("two array dimensions target the same template axis")
        tdims = template.dims
        for d, (ax, off, st, n) in enumerate(zip(axes, offsets, strides, array_shape)):
            if not 0 <= ax < len(tdims):
                raise ValueError(f"dimension {d}: template axis {ax} out of range")
            if st == 0:
                raise ValueError("alignment stride must be nonzero")
            if st < 0:
                raise ValueError("negative alignment strides are not supported")
            if tdims[ax].kind not in (BLOCK, COLLAPSED):
                raise ValueError(
                    f"template axis {ax} is {tdims[ax].kind}; only BLOCK/'*' "
                    "axes can be alignment targets"
                )
            last = off + st * (n - 1)
            if off < 0 or last >= tdims[ax].size:
                raise ValueError(
                    f"dimension {d} maps onto template cells [{off}, {last}] "
                    f"outside axis extent {tdims[ax].size}"
                )
        used = set(axes)
        for ax, dim in enumerate(tdims):
            if ax not in used and dim.procs != 1:
                raise ValueError(
                    f"template axis {ax} is distributed but unused; true "
                    "replication is not supported — collapse it or target it"
                )
        self.template = template
        self.array_shape = tuple(array_shape)
        self.axes = tuple(axes)
        self.offsets = tuple(offsets)
        self.strides = tuple(strides)
        self.nprocs = template.nprocs
        self.size = int(np.prod(self.array_shape)) if self.array_shape else 0

    @property
    def global_shape(self) -> tuple[int, ...]:
        """The aligned array's own shape (what HPFArray exposes)."""
        return self.array_shape

    # -- owned boxes -----------------------------------------------------------

    def owned_box(self, rank: int) -> tuple[tuple[int, int], ...]:
        """Per-array-dim interval ``[lo, hi)`` of indices owned by ``rank``."""
        coords = self.template.coords_of_rank(rank)
        out = []
        for d in range(len(self.array_shape)):
            ax = self.axes[d]
            tdim = self.template.dims[ax]
            tlo, thi = tdim.block_bounds(coords[ax])
            off, st, n = self.offsets[d], self.strides[d], self.array_shape[d]
            # indices i with tlo <= off + st*i < thi
            lo = max(0, -(-(tlo - off) // st))
            hi = min(n, -(-(thi - off) // st))
            out.append((lo, max(lo, hi)))
        return tuple(out)

    def local_shape(self, rank: int) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.owned_box(rank))

    def local_size(self, rank: int) -> int:
        return int(np.prod(self.local_shape(rank)))

    # -- Distribution API --------------------------------------------------------

    def owner_of_flat(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        gidx = np.asarray(gidx, dtype=np.int64)
        multi = np.unravel_index(gidx, self.array_shape)
        # Template proc coordinates per template axis (unused axes stay 0).
        pcs = [np.zeros(gidx.shape, dtype=np.int64) for _ in self.template.dims]
        for d, i in enumerate(multi):
            ax = self.axes[d]
            t = self.offsets[d] + self.strides[d] * i
            pc, _ = self.template.dims[ax].map(t)
            pcs[ax] = pc
        ranks = self.template.rank_of_coords(tuple(pcs))
        # Local offset: C-order position within the rank's owned box.
        offsets = np.zeros_like(gidx)
        stride_acc = np.ones_like(gidx)
        for d in range(len(self.array_shape) - 1, -1, -1):
            ax = self.axes[d]
            tdim = self.template.dims[ax]
            pc = pcs[ax]
            if tdim.kind == COLLAPSED:
                tlo = np.zeros_like(gidx)
                thi = np.full_like(gidx, tdim.size)
            else:
                b = -(-tdim.size // tdim.procs)
                tlo = np.minimum(pc * b, tdim.size)
                thi = np.minimum(tlo + b, tdim.size)
            off, st, n = self.offsets[d], self.strides[d], self.array_shape[d]
            lo = np.maximum(0, -(-(tlo - off) // st))
            hi = np.minimum(n, -(-(thi - off) // st))
            extent = np.maximum(0, hi - lo)
            local = multi[d] - lo
            offsets = offsets + local * stride_acc
            stride_acc = stride_acc * extent
        return ranks, offsets

    def local_to_global(self, rank: int, offsets: np.ndarray) -> np.ndarray:
        offsets = np.asarray(offsets, dtype=np.int64)
        box = self.owned_box(rank)
        lshape = tuple(hi - lo for lo, hi in box)
        lcs = np.unravel_index(offsets, lshape)
        gcoords = [lc + box[d][0] for d, lc in enumerate(lcs)]
        return np.ravel_multi_index(gcoords, self.array_shape).astype(np.int64)

    def descriptor(self) -> DistDescriptor:
        payload = (
            self.template.descriptor().payload,
            self.array_shape,
            self.axes,
            self.offsets,
            self.strides,
        )
        return DistDescriptor(kind="aligned", payload=payload, nbytes=128)

    @classmethod
    def from_descriptor_payload(cls, payload) -> "AlignedDist":
        tpayload, shape, axes, offsets, strides = payload
        template = CartesianDist.from_descriptor_payload(tpayload)
        return cls(template, shape, axes, offsets, strides)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AlignedDist)
            and self.template == other.template
            and self.array_shape == other.array_shape
            and self.axes == other.axes
            and self.offsets == other.offsets
            and self.strides == other.strides
        )

    def __hash__(self) -> int:
        return hash((self.template, self.array_shape, self.axes,
                     self.offsets, self.strides))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"i{d}->T[{ax}]@{off}+{st}*i"
            for d, (ax, off, st) in enumerate(
                zip(self.axes, self.offsets, self.strides)
            )
        )
        return f"AlignedDist({parts})"


def align_array(
    comm: Communicator,
    shape: tuple[int, ...],
    template: Template,
    axes: tuple[int, ...] | None = None,
    offsets: tuple[int, ...] | None = None,
    strides: tuple[int, ...] | None = None,
    dtype=np.float64,
) -> HPFArray:
    """``!hpf$ align`` — an HPF array aligned to a distributed template.

    Defaults give the identity alignment (``A(i,...) with T(i,...)``).
    """
    ndim = len(shape)
    axes = tuple(axes) if axes is not None else tuple(range(ndim))
    offsets = tuple(offsets) if offsets is not None else (0,) * ndim
    strides = tuple(strides) if strides is not None else (1,) * ndim
    dist = AlignedDist(template.dist, shape, axes, offsets, strides)
    if dist.nprocs != comm.size:
        raise ValueError(
            f"template spans {dist.nprocs} procs, communicator has {comm.size}"
        )
    return HPFArray(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))


register_descriptor_kind("aligned", AlignedDist.from_descriptor_payload)
