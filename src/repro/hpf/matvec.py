"""Distributed matrix-vector multiply (the HPF compute-server kernel, §5.4).

The server program of the paper's client/server experiments is "an HPF
matrix-vector multiply program that distributes the matrix and vector
across the processors".  Here: the matrix is row-block distributed
(``("block", "*")``), the operand vector block distributed; each multiply
allgathers the operand (the HPF runtime's internal communication) and
computes its row block locally.

The paper observes the server "does not speed up beyond eight processors,
because of increased internal communication costs" — with P processes the
allgather moves O(P) messages of n/P elements over the shared ATM links,
which is exactly what this implementation's cost accounting produces.
"""

from __future__ import annotations

import numpy as np

from repro.hpf.array import HPFArray
from repro.vmachine.process import current_process

__all__ = ["distributed_matvec", "local_matvec_time"]


def distributed_matvec(A: HPFArray, x: HPFArray, y: HPFArray) -> None:
    """``y = A @ x`` with A row-block distributed, x/y block distributed.

    Collective.  ``A`` must be ``(block, *)`` over the same communicator
    as ``x`` and ``y``; ``x`` and ``y`` are 1-D block arrays of matching
    extents.
    """
    if len(A.global_shape) != 2:
        raise ValueError("A must be a matrix")
    m, n = A.global_shape
    if x.global_shape != (n,) or y.global_shape != (m,):
        raise ValueError(
            f"shape mismatch: A {A.global_shape}, x {x.global_shape}, y {y.global_shape}"
        )
    comm = A.comm
    proc = current_process()
    # Allgather the operand vector (internal HPF communication).
    parts = comm.allgather(x.local.copy())
    xfull = np.concatenate(parts)
    proc.charge_mem(xfull.nbytes)
    # Local row-block product.
    rows = A.local_nd
    y.local[:] = rows @ xfull
    proc.charge_flops(2.0 * rows.shape[0] * rows.shape[1])


def local_matvec_time(m: int, n: int, profile) -> float:
    """Modelled time of a *sequential* in-client matvec (Figure 15's
    alternative to using the server): 2mn flops at the profile's rate."""
    return 2.0 * m * n * profile.gamma_flop
