"""HPF intrinsic-style global operations on distributed arrays.

The HPF runtime provides more than forall loops: global reductions
(``SUM``, ``MAXVAL`` ...), dot products, and the ``CSHIFT``/``EOSHIFT``
array intrinsics.  These are the intra-library operations whose
communication an HPF compiler schedules internally — implemented here on
the same substrate so HPF programs in the examples/benchmarks are
self-sufficient.
"""

from __future__ import annotations

import numpy as np

from repro.core.region import SectionRegion
from repro.distrib.section import Section
from repro.hpf.array import HPFArray
from repro.vmachine.process import current_process

__all__ = ["hpf_sum", "hpf_max", "hpf_min", "hpf_dot", "cshift", "hpf_section_copy"]


def _reduce(array: HPFArray, local_value: float, op) -> float:
    current_process().charge_flops(array.local.size)
    return array.comm.allreduce(float(local_value), op)


def hpf_sum(array: HPFArray) -> float:
    """Global ``SUM(array)`` (collective, returns on every rank)."""
    return _reduce(array, array.local.sum(), lambda a, b: a + b)


def hpf_max(array: HPFArray) -> float:
    """Global ``MAXVAL(array)``."""
    if array.local.size == 0:
        return _reduce(array, -np.inf, max)
    return _reduce(array, array.local.max(), max)


def hpf_min(array: HPFArray) -> float:
    """Global ``MINVAL(array)``."""
    if array.local.size == 0:
        return _reduce(array, np.inf, min)
    return _reduce(array, array.local.min(), min)


def hpf_dot(x: HPFArray, y: HPFArray) -> float:
    """Global ``DOT_PRODUCT(x, y)`` over aligned 1-D arrays."""
    if not x.aligned_with(y):
        raise ValueError("dot product requires aligned arrays")
    current_process().charge_flops(2 * x.local.size)
    return x.comm.allreduce(float(x.local @ y.local), lambda a, b: a + b)


def hpf_section_copy(
    src: HPFArray,
    src_slices: tuple[slice, ...],
    dst: HPFArray,
    dst_slices: tuple[slice, ...],
) -> None:
    """Native HPF array-section assignment ``dst[d] = src[s]`` (collective).

    This is the HPF runtime's own intra-language remap — what an HPF
    compiler emits for a section assignment between differently
    distributed arrays.  Implemented, like the real runtime, as a
    schedule-plus-move over the regular sections; Meta-Chaos is only
    needed when the two sides belong to *different* libraries.
    """
    from repro.core.api import mc_compute_schedule, mc_copy, mc_new_set_of_regions

    src_region = SectionRegion(Section.from_slices(src_slices, src.global_shape))
    dst_region = SectionRegion(Section.from_slices(dst_slices, dst.global_shape))
    sched = mc_compute_schedule(
        src.comm,
        "hpf", src, mc_new_set_of_regions(src_region),
        "hpf", dst, mc_new_set_of_regions(dst_region),
    )
    mc_copy(src.comm, sched, src, dst)


def cshift(array: HPFArray, shift: int, dim: int = 0) -> HPFArray:
    """Circular shift: ``out[..., i, ...] = array[..., (i+shift) % n, ...]``.

    Returns a new array with the same distribution.  Implemented as the
    runtime would: a section copy with wraparound split into (at most)
    two section assignments.
    """
    n = array.global_shape[dim]
    shift %= n
    out = HPFArray(
        array.comm, array.dist, np.zeros(array.local.size, dtype=array.dtype)
    )
    if shift == 0:
        out.local[:] = array.local
        current_process().charge_mem(array.local.nbytes)
        return out

    ndim = len(array.global_shape)

    def slices(dim_slice):
        s = [slice(None)] * ndim
        s[dim] = dim_slice
        return tuple(s)

    # out[0 : n-shift] = array[shift : n]
    hpf_section_copy(array, slices(slice(shift, n)), out, slices(slice(0, n - shift)))
    # out[n-shift : n] = array[0 : shift]
    hpf_section_copy(array, slices(slice(0, shift)), out, slices(slice(n - shift, n)))
    return out
