"""HPF array-section region constructors (paper Figure 9)."""

from __future__ import annotations

from repro.core.region import SectionRegion
from repro.distrib.section import Section

__all__ = ["create_region_hpf", "hpf_section"]


def create_region_hpf(
    ndims: int,
    lower: tuple[int, ...],
    upper: tuple[int, ...],
    stride: tuple[int, ...] | None = None,
) -> SectionRegion:
    """``CreateRegion_HPF(ndims, Rleft, Rright)`` with inclusive bounds.

    The paper's example builds the source region of
    ``B[50:100, 50:100]`` as ``CreateRegion_HPF(2, (50,50), (100,100))``
    (Fortran inclusive upper bounds; zero- vs one-based indexing is up to
    the caller's convention — this reproduction is zero-based throughout).
    """
    if not (len(lower) == len(upper) == ndims):
        raise ValueError("lower/upper must have ndims entries")
    return SectionRegion.from_bounds(tuple(lower), tuple(upper), stride)


def hpf_section(slices: tuple[slice, ...], shape: tuple[int, ...]) -> SectionRegion:
    """Region from Fortran-90-style triplet slices (Python syntax)."""
    return SectionRegion(Section.from_slices(slices, shape))
