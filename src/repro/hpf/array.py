"""HPF distributed arrays.

:class:`HPFArray` carries an ``!hpf$ distribute``-style mapping given as
one spec per dimension:

- ``"block"`` — contiguous blocks,
- ``"cyclic"`` — round robin,
- ``"cyclic(k)"`` — block-cyclic with block size k,
- ``"*"`` — dimension not distributed.

The processor-grid axis lengths are chosen automatically (balanced over
the distributed dimensions) or given explicitly.
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.core.dataplane import accept_local, read_flat
from repro.distrib.cartesian import (
    BLOCK,
    BLOCK_CYCLIC,
    COLLAPSED,
    CYCLIC,
    CartesianDist,
    DimDist,
    proc_grid,
)
from repro.vmachine.comm import Communicator

__all__ = ["HPFArray", "parse_dist_spec"]

_CYCLIC_K = re.compile(r"^cyclic\((\d+)\)$")


def parse_dist_spec(spec: str) -> tuple[str, int]:
    """Parse one per-dimension spec into (kind, block size)."""
    spec = spec.strip().lower()
    if spec == "block":
        return BLOCK, 0
    if spec == "cyclic":
        return CYCLIC, 0
    if spec == "*":
        return COLLAPSED, 0
    m = _CYCLIC_K.match(spec)
    if m:
        return BLOCK_CYCLIC, int(m.group(1))
    raise ValueError(f"unknown HPF distribution spec {spec!r}")


def _build_dist(
    shape: tuple[int, ...],
    specs: tuple[str, ...],
    nprocs: int,
    grid: tuple[int, ...] | None,
) -> CartesianDist:
    if len(specs) != len(shape):
        raise ValueError("one distribution spec per dimension required")
    kinds = [parse_dist_spec(s) for s in specs]
    distributed = [i for i, (k, _) in enumerate(kinds) if k != COLLAPSED]
    if grid is None:
        if distributed:
            axis_lengths = proc_grid(nprocs, len(distributed))
        else:
            axis_lengths = ()
            if nprocs != 1:
                raise ValueError(
                    "a fully collapsed array can only live on one processor"
                )
        full = [1] * len(shape)
        for i, p in zip(distributed, axis_lengths):
            full[i] = p
        grid = tuple(full)
    if int(np.prod(grid)) != nprocs:
        raise ValueError(f"grid {grid} does not cover {nprocs} processors")
    dims = []
    for (kind, k), n, p in zip(kinds, shape, grid):
        if kind == COLLAPSED and p != 1:
            raise ValueError("'*' dimensions must have grid extent 1")
        dims.append(DimDist(kind if p > 1 else COLLAPSED, n, p, k))
    return CartesianDist(tuple(dims))


class HPFArray:
    """One rank's piece of an HPF-distributed array."""

    def __init__(self, comm: Communicator, dist: CartesianDist, local: np.ndarray):
        if dist.nprocs != comm.size:
            raise ValueError(
                f"distribution spans {dist.nprocs} procs, communicator has {comm.size}"
            )
        expected = dist.local_size(comm.rank)
        if local.size != expected:
            raise ValueError(
                f"rank {comm.rank}: local storage {local.size} != {expected}"
            )
        self.comm = comm
        self.dist = dist
        # Zero-copy: any strided ndarray (transposed, sliced,
        # non-contiguous) is first-class local storage; the compiled
        # data plane addresses it in place in logical (C) order.
        self.local = accept_local(local)

    # -- collective constructors ------------------------------------------------

    @classmethod
    def distribute(
        cls,
        comm: Communicator,
        shape: tuple[int, ...],
        specs: tuple[str, ...],
        grid: tuple[int, ...] | None = None,
        dtype=np.float64,
    ) -> "HPFArray":
        """``!hpf$ distribute A(spec, spec, ...)``: zeros with the mapping."""
        dist = _build_dist(shape, specs, comm.size, grid)
        return cls(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))

    @classmethod
    def from_global(
        cls,
        comm: Communicator,
        full: np.ndarray,
        specs: tuple[str, ...],
        grid: tuple[int, ...] | None = None,
    ) -> "HPFArray":
        """Each rank takes its elements of a replicated global array."""
        dist = _build_dist(full.shape, specs, comm.size, grid)
        mine = dist.owned_global(comm.rank)
        local = full.reshape(-1)[mine]
        return cls(comm, dist, local.copy())

    @classmethod
    def from_function(
        cls,
        comm: Communicator,
        shape: tuple[int, ...],
        fn: Callable[..., np.ndarray],
        specs: tuple[str, ...],
        grid: tuple[int, ...] | None = None,
        dtype=np.float64,
    ) -> "HPFArray":
        """Owner-computes init from ``fn(*global_index_arrays)``.

        ``fn`` receives one flat index array per dimension (the global
        coordinates of this rank's elements, element-aligned) and returns
        the element values.
        """
        dist = _build_dist(shape, specs, comm.size, grid)
        arr = cls(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))
        mine = dist.owned_global(comm.rank)
        coords = np.unravel_index(mine, shape)
        arr.local[:] = fn(*coords)
        return arr

    # -- views --------------------------------------------------------------------

    @property
    def global_shape(self) -> tuple[int, ...]:
        return self.dist.global_shape

    @property
    def local_shape(self) -> tuple[int, ...]:
        return self.dist.local_shape(self.comm.rank)

    @property
    def local_nd(self) -> np.ndarray:
        if self.local.ndim > 1:
            if self.local.shape != self.local_shape:
                raise ValueError(
                    f"strided local storage {self.local.shape} does not "
                    f"admit a {self.local_shape} view"
                )
            return self.local
        return self.local.reshape(self.local_shape)

    @property
    def dtype(self):
        return self.local.dtype

    @property
    def itemsize(self) -> int:
        return self.local.dtype.itemsize

    def aligned_with(self, other: "HPFArray") -> bool:
        """True when both arrays share the same distribution."""
        return self.dist == other.dist

    # -- test/debug helpers ----------------------------------------------------------

    def gather_global(self) -> np.ndarray | None:
        """Collect the full global array on rank 0 (testing oracle)."""
        pieces = self.comm.gather((self.comm.rank, read_flat(self.local).copy()))
        if pieces is None:
            return None
        out = np.zeros(int(np.prod(self.global_shape)), dtype=self.dtype)
        for rank, local in pieces:
            out[self.dist.owned_global(rank)] = local
        return out.reshape(self.global_shape)

    def __repr__(self) -> str:
        return (
            f"HPFArray(shape={self.global_shape}, dist={self.dist}, "
            f"rank={self.comm.rank}/{self.comm.size})"
        )
