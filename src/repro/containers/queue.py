"""Distributed multi-producer FIFO queues over one-sided windows.

Every rank hosts one bounded queue of fixed-width ``float64`` records.
Producers on any rank append to any host with two one-sided epochs and
no host-side involvement (the BCL queue idiom on fence synchronization):

1. *Reserve*: ``fetch_add`` on the host's tail counter claims a
   contiguous range of slots.  The window layer's deterministic
   ``(origin, issue order)`` total order makes every reservation unique
   and reproducible.
2. *Fill*: ``put`` the records into the claimed slots.

``pop_all`` drains the local queue (owner-local reads — the data is
already in the rank's registered storage) and resets the tail, so the
queue is an epoch-bounded buffer: at most ``capacity`` records may be
pushed at a host between drains.  Overflow is detected at the origin
from the reservation itself and raised on every rank that over-claimed.

All batch operations are collective (pass empty batches to
participate); producers and the draining owner are synchronized by the
window fences inside.
"""

from __future__ import annotations

import numpy as np

from repro.vmachine.comm import Communicator
from repro.vmachine.window import Window

__all__ = ["DistQueue", "QueueOverflow"]


class QueueOverflow(RuntimeError):
    """A push batch reserved slots past the host queue's capacity."""


class DistQueue:
    """One bounded FIFO of fixed-width records per rank.

    Parameters
    ----------
    comm:
        Communicator spanning the group (construction collective).
    capacity:
        Maximum records resident at one host between ``pop_all`` drains.
    record_width:
        Fixed length of every record vector.
    reliable:
        Route window traffic through the retransmit protocol.
    """

    def __init__(
        self,
        comm: Communicator,
        capacity: int,
        record_width: int = 1,
        reliable: bool = False,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if record_width <= 0:
            raise ValueError("record_width must be positive")
        self.comm = comm
        self.capacity = int(capacity)
        self.record_width = int(record_width)
        self._tail = Window(comm, np.zeros(1, dtype=np.int64),
                            reliable=reliable)
        self._data = Window(comm, np.zeros(capacity * record_width),
                            reliable=reliable)

    def push_all(self, items) -> None:
        """Append ``(host_rank, record)`` pairs; collective.

        Records from one rank to one host land contiguously in push
        order; interleaving between producer ranks follows the window
        layer's deterministic reservation order.
        """
        comm = self.comm
        proc = comm.process
        with proc.span("container:queue_push"):
            batch: dict[int, list[np.ndarray]] = {}
            for host, rec in items:
                host = int(host)
                rec = np.asarray(rec, dtype=np.float64).reshape(
                    self.record_width)
                batch.setdefault(host, []).append(rec)
            proc.metrics.incr("queue_pushes", len(items))
            # Epoch 1: reserve a contiguous range at every targeted host.
            reservations = []
            for host in sorted(batch):
                recs = batch[host]
                h = self._tail.fetch_add(host, 0, len(recs))
                reservations.append((host, recs, h))
            self._tail.fence()
            self._data.fence()
            # Epoch 2: fill the claimed slots.
            w = self.record_width
            overflow = None
            for host, recs, h in reservations:
                start = int(h.value)
                if start + len(recs) > self.capacity:
                    overflow = (host, start + len(recs))
                    continue
                block = np.concatenate(recs)
                self._data.put(host, block, start=start * w)
            self._tail.fence()
            self._data.fence()
            if overflow is not None:
                host, claimed = overflow
                raise QueueOverflow(
                    f"push reserved {claimed} > capacity {self.capacity} "
                    f"records at host {host}"
                )

    def pop_all(self) -> list[np.ndarray]:
        """Drain this rank's queue; collective (synchronizes producers).

        Returns the resident records in FIFO (reservation) order and
        resets the queue.  The paired fences guarantee every record
        pushed before the enclosing ``pop_all`` round is visible.
        """
        comm = self.comm
        proc = comm.process
        with proc.span("container:queue_pop"):
            # One empty epoch pair orders this drain against concurrent
            # producers: their fills fenced before entering pop_all.
            self._tail.fence()
            self._data.fence()
            n = int(self._tail.local[0])
            w = self.record_width
            out = [self._data.local[i * w:(i + 1) * w].copy()
                   for i in range(n)]
            proc.metrics.incr("queue_pops", n)
            self._tail.local[0] = 0
            return out

    def local_depth(self) -> int:
        """Records currently reserved at this rank (no communication)."""
        return int(self._tail.local[0])
