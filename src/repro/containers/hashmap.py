"""Distributed open-addressing hash map over one-sided windows.

Layout: a global table of ``capacity`` slots is block-partitioned across
the ranks — slot ``s`` lives on rank ``s // cap_local`` at local offset
``s % cap_local``.  Each rank registers two windows: an ``int64`` *keys*
window (``EMPTY`` = -1) and a flat ``float64`` *values* window holding a
fixed-width vector per slot.  No owner-side code runs on behalf of a
remote operation: claiming a slot is a one-sided ``compare_and_swap`` on
the keys window, writing a value is a ``put``/``accumulate`` on the
values window.

Insertion runs in collective *rounds* (the BCL idiom adapted to fence
epochs).  In each round every rank CASes its pending keys into their
current probe slots and fences; the resolved old values tell it whether
it claimed the slot, found the key already present, or collided with a
different key and must probe on.  Value writes happen in a second epoch,
after which the ranks agree (allreduce) whether anyone still has pending
items.  Two origins inserting the *same* key in the same round resolve
deterministically: the window's ``(origin, issue order)`` total order
picks one CAS winner; the loser's old value equals its own key, which is
indistinguishable from "already present" — exactly the semantics wanted.

Duplicate keys with ``accumulate_all`` combine by vector sum (duplicates
within one batch are pre-combined locally, so one accumulate per key per
epoch reaches the wire).
"""

from __future__ import annotations

import numpy as np

from repro.vmachine.comm import Communicator
from repro.vmachine.window import Window

__all__ = ["DistHashMap", "EMPTY_KEY"]

#: sentinel stored in the keys window for a free slot (keys must be >= 0)
EMPTY_KEY = -1

#: 64-bit multiplicative mixer (splitmix64's constant) — Python's own
#: ``hash`` of small ints is the identity, which clusters catastrophically
#: under linear probing on a block-partitioned table.
_MIX = np.uint64(0x9E3779B97F4A7C15)


def _slot_hash(key: int) -> int:
    with np.errstate(over="ignore"):  # wrap-around is the point
        h = np.uint64(key) * _MIX
    h ^= h >> np.uint64(31)
    return int(h)


class DistHashMap:
    """A fixed-capacity distributed hash map of ``int -> float vector``.

    Parameters
    ----------
    comm:
        Communicator spanning the owning group (construction collective).
    capacity_per_rank:
        Local slots per rank; global capacity is ``P * capacity_per_rank``.
    value_width:
        Fixed length of every value vector.
    reliable:
        Route the underlying window traffic through the retransmit
        protocol (needed under an ``"rma"``-class fault plan).
    """

    def __init__(
        self,
        comm: Communicator,
        capacity_per_rank: int,
        value_width: int = 1,
        reliable: bool = False,
    ):
        if capacity_per_rank <= 0:
            raise ValueError("capacity_per_rank must be positive")
        if value_width <= 0:
            raise ValueError("value_width must be positive")
        self.comm = comm
        self.cap_local = int(capacity_per_rank)
        self.capacity = self.cap_local * comm.size
        self.value_width = int(value_width)
        self._keys = Window(
            comm, np.full(self.cap_local, EMPTY_KEY, dtype=np.int64),
            reliable=reliable)
        self._values = Window(
            comm, np.zeros(self.cap_local * value_width), reliable=reliable)

    # -- slot arithmetic ---------------------------------------------------

    def _slot(self, key: int, probe: int) -> tuple[int, int]:
        """(owner rank, local slot index) of ``key`` at probe distance."""
        s = (_slot_hash(key) + probe) % self.capacity
        return s // self.cap_local, s % self.cap_local

    # -- collective batch operations ---------------------------------------

    def insert_all(self, items) -> None:
        """Insert ``(key, vector)`` pairs; an existing key is overwritten.

        Collective — ranks with nothing to insert pass ``[]``.
        """
        self._write_all(items, op="replace")

    def accumulate_all(self, items) -> None:
        """Sum ``(key, vector)`` pairs into the map (missing key inserts).

        Duplicate keys — within this rank's batch or across ranks —
        combine by elementwise vector sum, deterministically.
        """
        self._write_all(items, op="sum")

    def _write_all(self, items, op: str) -> None:
        comm = self.comm
        proc = comm.process
        with proc.span("container:hashmap_write"):
            # Pre-combine duplicate keys in this batch: one wire op per key.
            batch: dict[int, np.ndarray] = {}
            for key, vec in items:
                key = int(key)
                if key < 0:
                    raise ValueError(f"keys must be non-negative (got {key})")
                vec = np.asarray(vec, dtype=np.float64).reshape(
                    self.value_width)
                if key in batch:
                    if op == "sum":
                        batch[key] = batch[key] + vec
                    else:
                        batch[key] = vec
                else:
                    batch[key] = vec
            proc.metrics.incr("hashmap_writes", len(batch))
            # pending: key -> (vector, probe distance); iterate rounds in
            # sorted-key order so issue order (hence the total order the
            # fence applies) is deterministic.
            pending = {k: (v, 0) for k, v in batch.items()}
            rounds = 0
            while True:
                handles = []
                for key in sorted(pending):
                    vec, probe = pending[key]
                    owner, idx = self._slot(key, probe)
                    h = self._keys.compare_and_swap(owner, idx,
                                                    EMPTY_KEY, key)
                    handles.append((key, owner, idx, h))
                self._keys.fence()
                self._values.fence()  # paired epochs keep SPMD discipline
                writable = []
                for key, owner, idx, h in handles:
                    old = int(h.value)
                    if old == EMPTY_KEY or old == key:
                        writable.append((key, owner, idx))
                    else:  # genuine collision with a different key
                        vec, probe = pending[key]
                        if probe + 1 >= self.capacity:
                            raise RuntimeError("DistHashMap is full")
                        pending[key] = (vec, probe + 1)
                for key, owner, idx in writable:
                    vec, _ = pending.pop(key)
                    self._values.accumulate(
                        owner, vec, start=idx * self.value_width, op=op)
                self._keys.fence()
                self._values.fence()
                rounds += 1
                still = comm.allreduce(len(pending), max)
                if still == 0:
                    break
            proc.metrics.incr("hashmap_write_rounds", rounds)

    def find_all(self, keys) -> dict[int, np.ndarray | None]:
        """Look up many keys; collective.  Missing keys map to ``None``."""
        comm = self.comm
        proc = comm.process
        with proc.span("container:hashmap_find"):
            proc.metrics.incr("hashmap_finds", len(keys))
            out: dict[int, np.ndarray | None] = {}
            pending = {int(k): 0 for k in keys}
            while True:
                khandles = []
                for key in sorted(pending):
                    owner, idx = self._slot(key, pending[key])
                    kh = self._keys.get(owner, idx, 1)
                    vh = self._values.get(
                        owner, idx * self.value_width, self.value_width)
                    khandles.append((key, kh, vh))
                self._keys.fence()
                self._values.fence()
                for key, kh, vh in khandles:
                    stored = int(kh.value[0])
                    if stored == key:
                        out[key] = vh.value
                        del pending[key]
                    elif stored == EMPTY_KEY:
                        out[key] = None
                        del pending[key]
                    else:
                        probe = pending[key] + 1
                        if probe >= self.capacity:
                            out[key] = None
                            del pending[key]
                        else:
                            pending[key] = probe
                if comm.allreduce(len(pending), max) == 0:
                    break
            return out

    # -- owner-local access ------------------------------------------------

    def local_items(self) -> list[tuple[int, np.ndarray]]:
        """This rank's resident ``(key, vector)`` pairs (no communication).

        The hash distribution *is* the irregular partition: whoever owns
        the slot owns the entry, which is how a Chaos-style consumer gets
        its data-dependent ownership map.
        """
        out = []
        keys = self._keys.local
        vals = self._values.local
        w = self.value_width
        for idx in np.nonzero(keys != EMPTY_KEY)[0]:
            out.append((int(keys[idx]),
                        vals[idx * w:(idx + 1) * w].copy()))
        return out

    def local_size(self) -> int:
        """Number of entries resident on this rank (no communication)."""
        return int(np.count_nonzero(self._keys.local != EMPTY_KEY))

    def size(self) -> int:
        """Global entry count (collective)."""
        return self.comm.allreduce(self.local_size(), lambda a, b: a + b)
