"""Distributed data structures over one-sided windows (BCL-style).

The paper's interoperability story stops at *array* coupling: schedules
move regions of HPF/Chaos/pC++ arrays between libraries.  Many coupled
codes, though, exchange data through *irregular shared structures* — a
particle code publishing into a hash map the solver reads, a work queue
feeding a load balancer.  This subpackage builds those two structures on
top of :class:`repro.vmachine.window.Window`, the same way BCL builds
containers on one-sided communication: every operation decomposes into
``put``/``get``/``accumulate``/atomics on registered windows, so the
containers inherit the cost model, fault injection, reliability,
observability and record/replay of the window layer for free — and can
couple a Chaos-style irregular partition to an HPF BLOCK partition
without either side posting matching receives.

Both containers follow the window layer's SPMD discipline: mutating
batches (``insert_all``, ``accumulate_all``, ``find_all``, ``push_all``,
``pop_all``) are *collective* — every rank calls them together, with
empty argument lists when it has nothing to contribute.
"""

from repro.containers.hashmap import DistHashMap
from repro.containers.queue import DistQueue

__all__ = ["DistHashMap", "DistQueue"]
