"""Cost-model-driven auto-mapper (MODEL.md §14).

Given a host-side :class:`WorkloadSpec` — how many elements move, in
what pattern, how often the schedule is reused — the mapper searches the
mapping space (distribution per side × schedule method × executor
policy × fusion degree × translation-table residency) with a purely
analytical :class:`CostModel`, then optionally validates and calibrates
the winners against measured logical-clock spans.

Layering:

- :mod:`repro.autotune.workload` — workload/mapping descriptions and the
  offline pair/run matrices (no arrays, no VM).
- :mod:`repro.autotune.model` — the two-tier cost model: bit-exact move
  replay + coefficient-corrected build estimates.
- :mod:`repro.autotune.search` — enumeration, structural pruning, and
  branch-and-bound ranking.
- :mod:`repro.autotune.calibrate` — execute candidates under
  ``observe=True``, refit per-term coefficients from measured spans.
- :mod:`repro.autotune.auto` — the ``policy="auto"`` runtime hook used
  by ``mc_copy`` / ``mc_copy_many`` / ``CoupledExchange``.
"""

from repro.autotune.auto import choose_policy, resolve_policy
from repro.autotune.calibrate import (
    MeasuredRun,
    calibrate,
    measure_mapping,
    validate_top,
)
from repro.autotune.model import TERMS, Coefficients, CostModel, Prediction
from repro.autotune.search import (
    DEFAULT_DIST_MENU,
    SearchResult,
    mapping_space,
    search_mapping,
)
from repro.autotune.workload import (
    DistSpec,
    MappingPoint,
    WorkloadSpec,
    pair_matrix,
    run_matrix,
)

__all__ = [
    "Coefficients",
    "CostModel",
    "DEFAULT_DIST_MENU",
    "DistSpec",
    "MappingPoint",
    "MeasuredRun",
    "Prediction",
    "SearchResult",
    "TERMS",
    "WorkloadSpec",
    "calibrate",
    "choose_policy",
    "mapping_space",
    "measure_mapping",
    "pair_matrix",
    "resolve_policy",
    "run_matrix",
    "search_mapping",
    "validate_top",
]
