"""Offline search over the mapping space (no virtual-machine runs).

:func:`mapping_space` enumerates the candidate grid — distribution per
side × schedule method × executor policy × fusion degree × table
residency — pruning combinations that are structurally pointless (a
paged table without an irregular side, fusion without multiple fields).
:func:`search_mapping` evaluates the survivors under a
:class:`~repro.autotune.model.CostModel` with a cheap branch-and-bound
cut: candidates sharing a distribution pair share one exact move replay,
and a candidate whose move-only lower bound already exceeds the best
completed total is discarded before its build estimate is computed.

The search is pure arithmetic on the host — milliseconds of wall clock —
while a single *mis-mapped* run of the workload costs the full measured
price of the bad mapping.  ``bench_autotune`` quantifies that gap.
"""

from __future__ import annotations

import dataclasses
import time

from repro.autotune.model import CostModel, Prediction
from repro.autotune.workload import DistSpec, MappingPoint, WorkloadSpec
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import ScheduleMethod

__all__ = ["SearchResult", "mapping_space", "search_mapping"]

#: default per-side distribution menu (regular kinds + one partitioner)
DEFAULT_DIST_MENU = (
    DistSpec("block"),
    DistSpec("cyclic"),
    DistSpec("block_cyclic", block=16),
    DistSpec("irregular", seed=11),
)


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Ranked predictions plus the search's own cost accounting."""

    workload: WorkloadSpec
    ranked: tuple[Prediction, ...]
    evaluated: int
    pruned: int
    search_wall_s: float

    @property
    def best(self) -> Prediction:
        return self.ranked[0]

    def table(self, top: int | None = None) -> list[dict]:
        rows = [p.row() for p in self.ranked]
        return rows if top is None else rows[:top]


def mapping_space(
    workload: WorkloadSpec,
    dist_menu: tuple[DistSpec, ...] = DEFAULT_DIST_MENU,
    fixed_src: DistSpec | None = None,
    fixed_dst: DistSpec | None = None,
) -> list[MappingPoint]:
    """Enumerate candidate mapping points, structurally pruned.

    ``fixed_src``/``fixed_dst`` pin one side (the common case: an
    application's partitioner already owns one structure and only the
    peer's mapping is free).
    """
    src_menu = (fixed_src,) if fixed_src is not None else dist_menu
    dst_menu = (fixed_dst,) if fixed_dst is not None else dist_menu
    fusions = (1,) if workload.narrays <= 1 else (1, workload.narrays)
    points = []
    for src in src_menu:
        for dst in dst_menu:
            irregular = not (src.regular and dst.regular)
            tables = ("replicated", "paged") if irregular else ("replicated",)
            for method in (ScheduleMethod.COOPERATION,
                           ScheduleMethod.DUPLICATION):
                if method is ScheduleMethod.DUPLICATION and irregular \
                        and workload.nelems > 1 << 22:
                    # Duplication ships whole translation tables; at
                    # multi-megabyte table sizes the paper rules it out
                    # up front ("not practical", §5.1).
                    continue
                for policy in (ExecutorPolicy.ORDERED,
                               ExecutorPolicy.OVERLAP):
                    for fusion in fusions:
                        for table in tables:
                            points.append(MappingPoint(
                                src=src, dst=dst, method=method,
                                policy=policy, fusion=fusion, table=table,
                            ))
    return points


def search_mapping(
    workload: WorkloadSpec,
    model: CostModel | None = None,
    candidates: list[MappingPoint] | None = None,
    top: int | None = None,
    **space_kwargs,
) -> SearchResult:
    """Rank the mapping space by predicted total logical time.

    Candidates sharing ``(src, dst, policy, fusion)`` share one exact
    chained move replay; a candidate whose reuse-loop move cost alone
    exceeds the best total seen so far is pruned without pricing its
    build.  Returns every survivor ranked ascending (or the ``top`` N).
    """
    t0 = time.perf_counter()
    model = model or CostModel(workload.profile)
    if candidates is None:
        candidates = mapping_space(workload, **space_kwargs)
    # Price the cheap, shared part first so the bound is tight early:
    # candidates evaluated in ascending move-cost order.
    move_cache: dict[tuple, tuple[float, dict[str, float]]] = {}

    def move_key(m: MappingPoint) -> tuple:
        return (m.src, m.dst, m.policy, m.fusion)

    from repro.autotune.workload import pair_matrix

    def move_sim(m: MappingPoint) -> tuple[float, dict[str, float]]:
        """The whole reuse loop's move elapsed + term decomposition —
        the exact quantities ``predict`` composes, simulated once per
        (distributions, policy, fusion) and shared."""
        key = move_key(m)
        if key not in move_cache:
            counts = pair_matrix(workload, m.src, m.dst)
            terms: dict[str, float] = {}
            total = model.simulate_reuse(
                counts, workload.itemsize, m.policy, workload.reuse,
                segments=workload.narrays,
                fused=m.fusion > 1 and workload.narrays > 1,
                terms=terms,
            )
            move_cache[key] = (total, terms)
        return move_cache[key]

    ordered = sorted(candidates, key=lambda m: move_sim(m)[0])
    predictions: list[Prediction] = []
    pruned = 0
    best_total = float("inf")
    for m in ordered:
        if move_sim(m)[0] > best_total:
            pruned += 1
            continue
        pred = model.predict(workload, m, move=move_sim(m))
        predictions.append(pred)
        best_total = min(best_total, pred.total_s)
    predictions.sort(key=lambda p: p.total_s)
    if top is not None:
        predictions = predictions[:top]
    return SearchResult(
        workload=workload,
        ranked=tuple(predictions),
        evaluated=len(predictions),
        pruned=pruned,
        search_wall_s=time.perf_counter() - t0,
    )
