"""Runtime hook: resolve ``policy="auto"`` from a schedule or plan.

The full mapper (:func:`~repro.autotune.search.search_mapping`) decides
distributions before arrays exist — a host-side planning step.  But one
axis of the mapping space is still open *after* the schedule is built:
the executor policy.  :func:`choose_policy` closes it per rank from the
schedule's own stats, and :func:`resolve_policy` is the tiny shim
``mc_copy`` / ``mc_copy_many`` / ``CoupledExchange`` call when handed
the string ``"auto"``.

The decision is the cost model's, collapsed to its closed form: ORDERED
and OVERLAP charge identical pack/injection/drain totals, and differ
only in the ``alpha`` waits — rotated injection staggers arrivals and
wait-any completion consumes them in arrival order, so OVERLAP's
predicted elapsed is never above ORDERED's, strictly below as soon as a
rank completes receives from more than one peer.  With at most one
active receive peer the two executors issue byte-identical charge
sequences, and ORDERED (the paper-faithful, byte-guarded default) wins
the tie.  Per-rank divergence is safe: policy affects only local
ordering, never placement (the OVERLAP≡ORDERED destination-equality
property tests pin this).
"""

from __future__ import annotations

from typing import Any

from repro.core.policy import ExecutorPolicy

__all__ = ["choose_policy", "resolve_policy"]


def choose_policy(
    schedule_or_plan: Any, my_rank: int | None = None
) -> ExecutorPolicy:
    """Model-driven executor policy for an already-built schedule/plan.

    OVERLAP exactly when this rank completes receives from more than one
    remote peer (the regime where arrival-order completion hides
    latency); ORDERED — the byte-guarded paper default — otherwise,
    including the degenerate all-local and single-peer cases where both
    executors produce identical charge sequences.  ``my_rank`` (the
    rank's source-group rank, when known) excludes the direct-local-copy
    entry from the peer count.
    """
    recvs = getattr(schedule_or_plan, "recvs", None)
    if recvs is None:
        # A MovePlan: one fused message per active source.
        recvs = getattr(schedule_or_plan, "recv_programs", {})
        active = sum(1 for s in recvs if s != my_rank)
        return ExecutorPolicy.OVERLAP if active > 1 else ExecutorPolicy.ORDERED
    active = sum(
        1 for s, off in recvs.items() if len(off) > 0 and s != my_rank
    )
    return ExecutorPolicy.OVERLAP if active > 1 else ExecutorPolicy.ORDERED


def resolve_policy(
    policy: "ExecutorPolicy | str",
    schedule_or_plan: Any,
    my_rank: int | None = None,
) -> ExecutorPolicy:
    """Coerce a policy argument, resolving the string ``"auto"``."""
    if isinstance(policy, str) and policy.lower() == "auto":
        return choose_policy(schedule_or_plan, my_rank)
    return ExecutorPolicy.coerce(policy)
