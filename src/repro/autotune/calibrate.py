"""Calibration and validation: run candidates, refit, compare.

The search tier never touches the virtual machine; this module is the
bridge back.  :func:`measure_mapping` executes one (workload, mapping)
pair under ``VirtualMachine(observe=True)`` and splits the run into a
schedule-build window and a data-move window with
:meth:`~repro.observe.metrics.MetricsRegistry.snapshot` /
:meth:`~repro.observe.metrics.MetricsSnapshot.diff` — the measured
per-term span totals are the exact clock decomposition PR 5's
attribution guarantees.  :func:`calibrate` refits the model's per-term
build coefficients against those totals; :func:`validate_top` executes
the search's top-N candidates and reports predicted vs measured, which
is how ``bench_autotune`` certifies the auto-chosen mapping against the
exhaustive measured optimum.

Table residency (``mapping.table == "paged"``) is measured by
substitution: the replicated-table build is measured as usual, then the
rank's dereference queries are replayed through both a replicated and a
:class:`~repro.chaos.PagedTranslationTable`, and the paged build time is
composed as ``build + (paged deref − replicated deref)`` — the paged
inspector *replaces* the local dereference with the collective round,
it does not add to it.
"""

from __future__ import annotations

import dataclasses

from repro.autotune.model import TERMS, Coefficients, CostModel, Prediction
from repro.autotune.search import SearchResult
from repro.autotune.workload import DistSpec, MappingPoint, WorkloadSpec

__all__ = [
    "MeasuredRun",
    "calibrate",
    "measure_mapping",
    "validate_top",
]


@dataclasses.dataclass(frozen=True)
class MeasuredRun:
    """Measured logical-time decomposition of one executed mapping."""

    mapping: MappingPoint
    #: schedule-build elapsed (max over ranks, seconds)
    build_s: float
    #: one timestep's data moves, elapsed (max over ranks, seconds)
    move_s: float
    #: build + reuse × move — same objective the search ranks by
    total_s: float
    #: per-term build totals, averaged over ranks (MetricsRegistry.diff)
    build_terms: dict[str, float]
    #: per-term move totals, averaged over ranks
    move_terms: dict[str, float]
    #: per-rank final logical clocks of the move window (bit-exactness
    #: anchor for the property suite)
    move_clocks: tuple[float, ...]
    #: per-rank clocks at the start of the move window
    move_start_clocks: tuple[float, ...]

    def row(self) -> dict:
        return {
            "mapping": self.mapping.label(),
            "measured_total_ms": self.total_s * 1e3,
            "measured_build_ms": self.build_s * 1e3,
            "measured_move_ms": self.move_s * 1e3,
        }


def _make_array(comm, spec: DistSpec, n: int):
    """(lib name, array) for one side's distribution choice."""
    if spec.regular:
        from repro.hpf.array import HPFArray

        return "hpf", HPFArray.distribute(comm, (n,), (spec.hpf_spec(),))
    from repro.chaos import ChaosArray

    return "chaos", ChaosArray.zeros(comm, spec.owners(n, comm.size))


def _sors(workload: WorkloadSpec):
    from repro.core import mc_new_set_of_regions
    from repro.core.region import IndexRegion, SectionRegion
    from repro.distrib.section import Section

    n = workload.nelems
    if workload.pattern == "section":
        half = n // 2
        src = SectionRegion(Section((0,), (half,), (1,)))
        dst = SectionRegion(Section((n - half,), (n,), (1,)))
    else:
        src = SectionRegion(Section.full((n,)))
        if workload.pattern == "identity":
            dst = SectionRegion(Section.full((n,)))
        else:
            dst = IndexRegion(workload.dst_indices())
    return mc_new_set_of_regions(src), mc_new_set_of_regions(dst)


def _term_mean(snapshots) -> dict[str, float]:
    """Per-term totals averaged over the per-rank snapshot diffs."""
    out = {t: 0.0 for t in TERMS}
    for snap in snapshots:
        for term, seconds in snap.term_totals().items():
            if term in out:
                out[term] += seconds
    return {t: v / max(1, len(snapshots)) for t, v in out.items()}


def _paged_deref_delta(comm, workload: WorkloadSpec, mapping: MappingPoint):
    """Per-rank clock delta: paged dereference minus replicated, for this
    rank's slice of the destination queries (zero when no irregular side
    or the mapping keeps the table replicated)."""
    if mapping.table != "paged":
        return 0.0
    spec = mapping.dst if not mapping.dst.regular else mapping.src
    if spec.regular:
        return 0.0
    from repro.chaos import PagedTranslationTable, TranslationTable

    proc = comm.process
    owners = spec.owners(workload.nelems, comm.size)
    queries = workload.dst_indices()[comm.rank :: comm.size]
    t0 = proc.clock
    table = TranslationTable.from_owners(owners, comm.size)
    table.dereference(queries)
    t_repl = proc.clock - t0
    t1 = proc.clock
    paged = PagedTranslationTable(comm, owners)
    paged.dereference(queries)
    t_paged = proc.clock - t1
    return t_paged - t_repl


def measure_mapping(
    workload: WorkloadSpec, mapping: MappingPoint
) -> MeasuredRun:
    """Execute one mapped workload under observe=True and decompose it."""
    from repro.core import (
        mc_compute_plan,
        mc_compute_schedule,
        mc_copy,
        mc_copy_many,
    )
    from repro.vmachine import VirtualMachine

    k = workload.narrays
    fused = mapping.fusion > 1 and k > 1

    def spmd(comm):
        proc = comm.process
        src_lib, src0 = _make_array(comm, mapping.src, workload.nelems)
        dst_lib, dst0 = _make_array(comm, mapping.dst, workload.nelems)
        srcs = [src0] + [
            _make_array(comm, mapping.src, workload.nelems)[1]
            for _ in range(k - 1)
        ]
        dsts = [dst0] + [
            _make_array(comm, mapping.dst, workload.nelems)[1]
            for _ in range(k - 1)
        ]
        for i, a in enumerate(srcs):
            a.local[:] = comm.rank + i + 1.0
        src_sor, dst_sor = _sors(workload)
        comm.barrier()
        before = proc.metrics.snapshot()
        t0 = proc.clock
        sched = mc_compute_schedule(
            comm, src_lib, src0, src_sor, dst_lib, dst0, dst_sor,
            mapping.method, policy=mapping.policy,
        )
        table_delta = _paged_deref_delta(comm, workload, mapping)
        plan = mc_compute_plan([sched] * k) if fused else None
        mid = proc.metrics.snapshot()
        t1 = proc.clock
        for _ in range(workload.reuse):
            if fused:
                mc_copy_many(comm, plan, srcs, dsts, policy=mapping.policy)
            else:
                for a, b in zip(srcs, dsts):
                    mc_copy(comm, sched, a, b, policy=mapping.policy)
        t2 = proc.clock
        after = proc.metrics.snapshot()
        return {
            "build_s": (t1 - t0) + table_delta,
            "move_total_s": t2 - t1,
            "move_start": t1,
            "move_end": t2,
            "build_diff": mid.diff(before),
            "move_diff": after.diff(mid),
        }

    result = VirtualMachine(
        workload.nprocs, profile=workload.profile, observe=True
    ).run(spmd)
    rows = result.values
    build_s = max(r["build_s"] for r in rows)
    move_total = max(r["move_end"] - r["move_start"] for r in rows)
    move_s = move_total / workload.reuse
    return MeasuredRun(
        mapping=mapping,
        build_s=build_s,
        move_s=move_s,
        total_s=build_s + workload.reuse * move_s,
        build_terms=_term_mean([r["build_diff"] for r in rows]),
        move_terms=_term_mean([r["move_diff"] for r in rows]),
        move_clocks=tuple(r["move_end"] for r in rows),
        move_start_clocks=tuple(r["move_start"] for r in rows),
    )


def calibrate(
    workload: WorkloadSpec,
    candidates: list[MappingPoint],
    model: CostModel | None = None,
) -> CostModel:
    """Refit the build-tier coefficients from measured runs.

    Executes each candidate once, then fits one multiplier per cost term
    by ratio of sums — ``θ_t = Σ measured_t / Σ predicted_t`` — the
    least-squares solution for a single scale factor through the origin
    with uniform per-run weights.  Terms the candidates never exercise
    keep their prior coefficient.
    """
    model = model or CostModel(workload.profile)
    from repro.autotune.workload import pair_matrix, run_matrix

    measured_sum = {t: 0.0 for t in TERMS}
    predicted_sum = {t: 0.0 for t in TERMS}
    for mapping in candidates:
        run = measure_mapping(workload, mapping)
        counts = pair_matrix(workload, mapping.src, mapping.dst)
        runs = run_matrix(workload, mapping.src, mapping.dst)
        est = model.build_terms(workload, mapping, counts, runs)
        for t in TERMS:
            measured_sum[t] += run.build_terms.get(t, 0.0)
            predicted_sum[t] += est.get(t, 0.0)
    prior = model.coefficients.as_dict()
    fitted = {
        t: (measured_sum[t] / predicted_sum[t])
        if predicted_sum[t] > 0.0 and measured_sum[t] > 0.0
        else prior[t]
        for t in TERMS
    }
    return CostModel(model.profile, Coefficients(**fitted))


def validate_top(
    workload: WorkloadSpec,
    search: SearchResult,
    top: int = 3,
) -> list[tuple[Prediction, MeasuredRun]]:
    """Execute the search's top-N candidates; pair predicted with measured."""
    out = []
    for pred in search.ranked[:top]:
        out.append((pred, measure_mapping(workload, pred.mapping)))
    return out
