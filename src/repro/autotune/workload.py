"""Workload descriptions and candidate mapping points for the auto-mapper.

A :class:`WorkloadSpec` captures what an application is about to do —
how many elements move, in what access pattern, how often a schedule is
reused, how many same-shaped fields travel per step — *without* building
any distributed arrays.  A :class:`MappingPoint` is one candidate answer
to "how should it be mapped": a distribution per side
(:class:`DistSpec`), a :class:`~repro.core.schedule.ScheduleMethod`, an
:class:`~repro.core.policy.ExecutorPolicy`, a fusion degree, and the
translation-table residency (replicated vs paged).

Everything here is host-side and deterministic: owner maps come from the
same :mod:`repro.distrib` descriptors the runtime uses (so the offline
pair matrix agrees element-for-element with what a schedule built inside
the virtual machine would carry), and the traversal order replicates the
SetOfRegions linearization of the measured workloads (ascending source
indices paired with the pattern's destination indices).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.policy import ExecutorPolicy
from repro.core.schedule import ScheduleMethod
from repro.distrib.cartesian import BLOCK, BLOCK_CYCLIC, CYCLIC, CartesianDist, DimDist
from repro.distrib.irregular import IrregularDist
from repro.vmachine.cost_model import IBM_SP2, MachineProfile

__all__ = [
    "DistSpec",
    "MappingPoint",
    "WorkloadSpec",
    "pair_matrix",
    "run_matrix",
]

_REGULAR_KINDS = {"block": BLOCK, "cyclic": CYCLIC, "block_cyclic": BLOCK_CYCLIC}


@dataclasses.dataclass(frozen=True)
class DistSpec:
    """One side's distribution choice, independent of any array object.

    ``kind`` is ``"block"``, ``"cyclic"``, ``"block_cyclic"`` (with
    ``block`` > 0) or ``"irregular"`` (a seeded balanced random
    partitioner standing in for an application partitioner such as RCB).
    """

    kind: str
    block: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in (*_REGULAR_KINDS, "irregular"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.kind == "block_cyclic" and self.block < 1:
            raise ValueError("block_cyclic needs a positive block size")

    @property
    def regular(self) -> bool:
        return self.kind != "irregular"

    def distribution(self, nelems: int, nprocs: int):
        """The runtime :class:`~repro.distrib.base.Distribution` object."""
        if self.kind == "irregular":
            return IrregularDist(self.owners(nelems, nprocs), nprocs)
        return CartesianDist(
            (DimDist(_REGULAR_KINDS[self.kind], nelems, nprocs, self.block),)
        )

    def owners(self, nelems: int, nprocs: int) -> np.ndarray:
        """Owner rank of every global index (the partitioner's output)."""
        if self.kind == "irregular":
            rng = np.random.default_rng(self.seed)
            base = np.repeat(np.arange(nprocs), -(-nelems // nprocs))[:nelems]
            return rng.permutation(base).astype(np.int64)
        ranks, _ = self.distribution(nelems, nprocs).owner_of_flat(
            np.arange(nelems, dtype=np.int64)
        )
        return ranks

    def hpf_spec(self) -> str:
        """The ``!hpf$ distribute`` spec string of a regular kind."""
        if self.kind == "block":
            return "block"
        if self.kind == "cyclic":
            return "cyclic"
        if self.kind == "block_cyclic":
            return f"cyclic({self.block})"
        raise ValueError("irregular distributions have no HPF spec")

    def label(self) -> str:
        if self.kind == "block_cyclic":
            return f"block_cyclic({self.block})"
        if self.kind == "irregular":
            return f"irregular(seed={self.seed})"
        return self.kind


@dataclasses.dataclass(frozen=True)
class MappingPoint:
    """One candidate configuration of the full mapping space."""

    src: DistSpec
    dst: DistSpec
    method: ScheduleMethod = ScheduleMethod.COOPERATION
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED
    #: 1 = one move per field; == narrays = all fields fused into one
    #: MovePlan message per processor pair
    fusion: int = 1
    #: translation-table residency for irregular sides
    table: str = "replicated"

    def __post_init__(self):
        if self.fusion < 1:
            raise ValueError("fusion degree must be >= 1")
        if self.table not in ("replicated", "paged"):
            raise ValueError(f"unknown table residency {self.table!r}")

    def label(self) -> str:
        parts = [
            f"{self.src.label()}->{self.dst.label()}",
            self.method.name.lower(),
            self.policy.value,
        ]
        if self.fusion > 1:
            parts.append(f"fuse{self.fusion}")
        if self.table != "replicated":
            parts.append(self.table)
        return "/".join(parts)


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """What moves, how often, on how many processors — nothing about how.

    ``pattern`` fixes the source→destination element correspondence:

    - ``"identity"``  — element ``i`` lands at ``i`` (redistribution only)
    - ``"permute"``   — a seeded whole-array permutation (the paper's
      §5.1/§5.2 regular↔irregular mesh remap)
    - ``"section"``   — the first half of the array lands on the second
      half (the paper's §5.3 multiblock boundary-update shape)
    """

    name: str
    nelems: int
    nprocs: int
    pattern: str = "permute"
    seed: int = 0
    itemsize: int = 8
    #: same-shaped fields moved per timestep (fusion candidates)
    narrays: int = 1
    #: data moves amortizing one schedule build
    reuse: int = 1
    profile: MachineProfile = IBM_SP2

    def __post_init__(self):
        if self.pattern not in ("identity", "permute", "section"):
            raise ValueError(f"unknown access pattern {self.pattern!r}")
        if self.nelems < 1 or self.nprocs < 1:
            raise ValueError("nelems and nprocs must be positive")

    def src_indices(self) -> np.ndarray:
        """Global source indices in linearization order."""
        if self.pattern == "section":
            return np.arange(self.nelems // 2, dtype=np.int64)
        return np.arange(self.nelems, dtype=np.int64)

    def dst_indices(self) -> np.ndarray:
        """Global destination indices, aligned with :meth:`src_indices`."""
        if self.pattern == "identity":
            return np.arange(self.nelems, dtype=np.int64)
        if self.pattern == "section":
            half = self.nelems // 2
            return np.arange(half, dtype=np.int64) + (self.nelems - half)
        rng = np.random.default_rng(self.seed)
        return rng.permutation(self.nelems).astype(np.int64)


def pair_matrix(
    workload: WorkloadSpec, src: DistSpec, dst: DistSpec
) -> np.ndarray:
    """P×P element-count matrix: entry ``[s, d]`` is how many elements
    rank ``s`` sends to rank ``d`` under this workload and distribution
    pair.  Computed host-side from the owner maps — the same
    ``owner_of_flat`` arithmetic the schedule builder runs, so the counts
    match a real schedule's :meth:`~repro.core.schedule.CommSchedule.
    stats` exactly.
    """
    P = workload.nprocs
    src_owner = src.owners(workload.nelems, P)[workload.src_indices()]
    dst_owner = dst.owners(workload.nelems, P)[workload.dst_indices()]
    flat = np.bincount(src_owner * P + dst_owner, minlength=P * P)
    return flat.reshape(P, P)


def run_matrix(
    workload: WorkloadSpec, src: DistSpec, dst: DistSpec
) -> np.ndarray:
    """P×P count of arithmetic-progression runs in each pair's offsets.

    The wire size of a schedule piece is its run-length encoding (24
    bytes per run, :mod:`repro.core.wire`), so the build-phase beta term
    scales with runs, not elements.  A regular→regular identity copy has
    O(P) runs; a whole-array permutation has O(n).
    """
    P = workload.nprocs
    src_owner = src.owners(workload.nelems, P)[workload.src_indices()]
    dst_owner = dst.owners(workload.nelems, P)[workload.dst_indices()]
    pair = src_owner * P + dst_owner
    # Run boundaries of the destination index sequence, examined within
    # each (s, d) stream in traversal order.
    dst_idx = workload.dst_indices()
    order = np.argsort(pair, kind="stable")
    sorted_pair = pair[order]
    sorted_dst = dst_idx[order]
    runs = np.zeros(P * P, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(sorted_pair))
    starts = np.concatenate(([0], boundaries + 1))
    stops = np.concatenate((boundaries + 1, [len(sorted_pair)]))
    for lo, hi in zip(starts, stops):
        if hi <= lo:
            continue
        seq = sorted_dst[lo:hi]
        if len(seq) < 3:
            nruns = 1
        else:
            step = np.diff(seq)
            nruns = 1 + int(np.count_nonzero(np.diff(step)))
        runs[sorted_pair[lo]] = nruns
    return runs.reshape(P, P)
