"""Analytical cost model of a mapped workload (predict before you run).

Two tiers of fidelity, deliberately separated:

**Exact tier — the data move.**  :meth:`CostModel.simulate_move` is a
discrete-event replay of the single-program executor's charge sequence
(:mod:`repro.core.datamove`), reproducing the virtual machine's
floating-point arithmetic *operation for operation*: per rank, the local
copy's pack charge, then each send's pack + injection
(``o_send + contention·nbytes/bandwidth``) with arrival one ``alpha``
later, then each receive's ``advance_to`` wait, drain overhead
(``o_recv + nbytes·γ_byte·0.25``) and unpack charge, in exactly the
order :class:`~repro.core.policy.ExecutorPolicy` dictates.  Because
every send of a move completes before any receive of that move consumes
it, arrival times are computable without iteration, and the predicted
per-rank clocks equal the measured logical clocks **to the last bit**
for pure data moves (single schedule, no reliability layer) — the
property suite pins this across methods, distributions and P.

**Approximate tier — schedule build and table residency.**
:meth:`CostModel.build_terms` composes per-term estimates
(``alpha``/``beta``/``occupancy``/``per_element`` — the observe
taxonomy, MODEL.md §10) for the COOPERATION and DUPLICATION builders and
for replicated vs paged translation tables.  These estimates carry a
:class:`Coefficients` vector of per-term multipliers that the
calibration path refits from measured span totals
(:meth:`~repro.observe.metrics.MetricsRegistry.diff`), closing the
model↔measurement loop without ever claiming build-time bit-exactness.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.autotune.workload import (
    DistSpec,
    MappingPoint,
    WorkloadSpec,
    pair_matrix,
    run_matrix,
)
from repro.core.policy import ExecutorPolicy, ordered_or_rotated
from repro.core.wire import (
    FUSED_HEADER_BYTES,
    RUN_WIRE_BYTES,
    SEGMENT_ALIGN,
    SEGMENT_HEADER_BYTES,
)
from repro.vmachine.cost_model import MachineProfile

__all__ = ["Coefficients", "CostModel", "Prediction", "TERMS"]

#: the observe taxonomy subset the model composes (MODEL.md §10/§14)
TERMS = ("alpha", "beta", "occupancy", "per_element")

#: reuse steps simulated exactly before extrapolating the steady state.
#: Later moves of a reuse loop start from the skewed clocks earlier
#: moves left behind, so the per-step cost drifts for a few steps and
#: then converges; past the cap each rank advances by its converged
#: per-step delta.
CHAIN_CAP = 256


@dataclasses.dataclass(frozen=True)
class Coefficients:
    """Per-term multipliers for the *approximate* (build) tier.

    The exact move simulation never consults these — scaling a bit-exact
    prediction could only make it wrong.  Calibration refits them so the
    analytical build estimates track the measured ``schedule:build``
    span totals on the machine profile in use.
    """

    alpha: float = 1.0
    beta: float = 1.0
    occupancy: float = 1.0
    per_element: float = 1.0

    def as_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)

    def apply(self, terms: dict[str, float]) -> float:
        d = self.as_dict()
        return sum(d.get(t, 1.0) * v for t, v in terms.items())


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One mapping point's predicted cost decomposition (seconds)."""

    mapping: MappingPoint
    #: elapsed logical seconds of one timestep's data moves, averaged
    #: over the reuse loop (exact tier, chained across steps)
    move_s: float
    #: analytical build estimate per cost term (approximate tier)
    build_terms: dict[str, float]
    #: coefficient-corrected build estimate
    build_s: float
    #: build + reuse × per-step moves — the ranking objective
    total_s: float
    #: per-term decomposition of the move (derived from the exact replay)
    move_terms: dict[str, float]

    def row(self) -> dict:
        """Flat JSON-friendly view for tables and benchmark records."""
        return {
            "mapping": self.mapping.label(),
            "predicted_total_ms": self.total_s * 1e3,
            "predicted_move_ms": self.move_s * 1e3,
            "predicted_build_ms": self.build_s * 1e3,
            "move_terms_ms": {t: v * 1e3 for t, v in self.move_terms.items()},
            "build_terms_ms": {t: v * 1e3 for t, v in self.build_terms.items()},
        }


def _pad(nbytes: int) -> int:
    return -(-nbytes // SEGMENT_ALIGN) * SEGMENT_ALIGN


class CostModel:
    """Predicts elapsed logical clock for (workload, mapping) pairs."""

    def __init__(
        self,
        profile: MachineProfile,
        coefficients: Coefficients | None = None,
    ):
        self.profile = profile
        self.coefficients = coefficients or Coefficients()

    # -- exact tier: the data move ----------------------------------------

    def simulate_move(
        self,
        counts: np.ndarray,
        itemsize: int,
        policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
        start_clocks: list[float] | None = None,
        segments: int = 1,
        fused: bool = False,
        terms: dict[str, float] | None = None,
    ) -> list[float]:
        """Replay one executed move; return the per-rank final clocks.

        ``counts[s, d]`` is the element count rank ``s`` sends rank
        ``d`` (diagonal = direct local copies).  ``segments`` is the
        number of same-shaped member schedules; ``fused=True`` models
        one :class:`~repro.core.plan.MovePlan` message per pair
        (``segments`` packed segments behind one header), ``fused=False``
        with ``segments > 1`` models the segments as *sequential*
        single-schedule moves.  ``terms`` (optional) accumulates the
        move's alpha/beta/occupancy/per_element decomposition — kept out
        of the clock arithmetic so the replay stays bit-exact.

        The arithmetic deliberately mirrors
        :meth:`~repro.vmachine.process.Process.charge` /
        :meth:`~repro.vmachine.comm._account_recv`: same expressions,
        same evaluation order, plain Python floats.
        """
        counts = np.asarray(counts)
        P = counts.shape[0]
        if counts.shape != (P, P):
            raise ValueError(f"counts must be square, got {counts.shape}")
        policy = ExecutorPolicy.coerce(policy)
        clocks = list(start_clocks) if start_clocks else [0.0] * P
        if len(clocks) != P:
            raise ValueError(f"{len(clocks)} start clocks for {P} ranks")
        if fused:
            self._one_move(counts, itemsize, policy, clocks, segments, True,
                           terms)
        else:
            for _ in range(segments):
                self._one_move(counts, itemsize, policy, clocks, 1, False,
                               terms)
        return clocks

    def _one_move(self, counts, itemsize, policy, clocks, nseg, fused,
                  terms) -> None:
        p = self.profile
        P = len(clocks)
        contention = p.contention_factor(P)
        pack = p.pack_per_elem
        arrivals: dict[tuple[int, int], float] = {}
        note = (lambda t, v: None) if terms is None else (
            lambda t, v: terms.__setitem__(t, terms.get(t, 0.0) + v)
        )
        # Plain Python ints once, outside the hot loops: element-wise
        # numpy scalar reads dominate the replay's wall time at P=64.
        rows = counts.tolist() if hasattr(counts, "tolist") else counts
        # Send half of every rank completes before any receive consumes
        # it (the executors send before they receive, and the virtual
        # transport buffers eagerly), so arrivals resolve in one pass.
        for r in range(P):
            c = clocks[r]
            row = rows[r]
            nloc = int(row[r])
            if nloc > 0:
                for _ in range(nseg):
                    c = c + nloc * pack
                    note("per_element", nloc * pack)
            dests = [d for d in range(P) if d != r and row[d] > 0]
            for d in ordered_or_rotated(dests, r, P, policy):
                n = int(row[d])
                for _ in range(nseg):
                    c = c + n * pack
                    note("per_element", n * pack)
                nbytes = self._message_nbytes(n, itemsize, nseg, fused)
                c = c + (p.o_send + contention * nbytes / p.bandwidth)
                note("occupancy", p.o_send)
                note("beta", contention * nbytes / p.bandwidth)
                arrivals[(r, d)] = c + p.alpha
            clocks[r] = c
        for r in range(P):
            c = clocks[r]
            srcs = [s for s in range(P) if s != r and rows[s][r] > 0]
            if policy is ExecutorPolicy.OVERLAP and len(srcs) > 1:
                # waitany completes the logically earliest message:
                # smallest (arrival, source) among those still pending.
                remaining = set(srcs)
                order = []
                while remaining:
                    s = min(remaining, key=lambda s: (arrivals[(s, r)], s))
                    remaining.discard(s)
                    order.append(s)
            else:
                order = sorted(srcs)
            for s in order:
                a = arrivals[(s, r)]
                if a > c:
                    note("alpha", a - c)
                    c = a
                n = int(rows[s][r])
                nbytes = self._message_nbytes(n, itemsize, nseg, fused)
                c = c + (p.o_recv + nbytes * p.gamma_byte * 0.25)
                note("occupancy", p.o_recv + nbytes * p.gamma_byte * 0.25)
                for _ in range(nseg):
                    c = c + n * pack
                    note("per_element", n * pack)
            clocks[r] = c

    @staticmethod
    def _message_nbytes(n: int, itemsize: int, nseg: int, fused: bool) -> int:
        """Wire size of one pair's message (plain packed or fused)."""
        if not fused:
            return n * itemsize
        return (
            FUSED_HEADER_BYTES
            + SEGMENT_HEADER_BYTES * nseg
            + nseg * _pad(n * itemsize)
        )

    # -- approximate tier: schedule build + table residency ----------------

    def build_terms(
        self,
        workload: WorkloadSpec,
        mapping: MappingPoint,
        counts: np.ndarray,
        runs: np.ndarray,
    ) -> dict[str, float]:
        """Per-term analytical estimate of one schedule build (seconds).

        Composes the observe taxonomy from the builder's structure:
        startup + descriptor/piece exchanges (``alpha``/``occupancy``),
        run-encoded schedule pieces on the wire (``beta``), and the
        dereference/locate work that dominates Chaos-style inspectors
        (``per_element``; paper §5.1).  Honest about its tier: these are
        rate×volume estimates, refit by calibration, never bit-exact.
        """
        p = self.profile
        P = workload.nprocs
        n_per = workload.nelems / P
        runs_per = float(runs.sum()) / P
        off_diag = counts.copy()
        np.fill_diagonal(off_diag, 0)
        peers = float((off_diag > 0).sum()) / P  # active peers per rank
        terms = {t: 0.0 for t in TERMS}
        terms["occupancy"] += p.startup

        def deref_side(spec: DistSpec, nelem: float) -> None:
            if spec.regular:
                terms["per_element"] += (
                    runs_per * p.locate_run + nelem * p.locate_elem
                )
                return
            terms["per_element"] += nelem * p.deref + nelem * p.hash_ref
            if mapping.table == "paged":
                # One batched request/reply round: 16-byte entries both
                # ways plus the collective's message overheads.
                terms["alpha"] += 2 * p.alpha
                terms["beta"] += 2 * 16 * nelem / p.bandwidth
                terms["occupancy"] += 2 * peers * (p.o_send + p.o_recv)

        if mapping.method.name == "COOPERATION":
            # Each side dereferences its own elements, then the pieces of
            # the schedule are distributed to their executing ranks.
            deref_side(mapping.src, n_per)
            deref_side(mapping.dst, n_per)
            terms["alpha"] += 2 * p.alpha
            terms["occupancy"] += 2 * peers * (p.o_send + p.o_recv)
            piece_bytes = runs_per * RUN_WIRE_BYTES
            terms["beta"] += 2 * piece_bytes / p.bandwidth
        else:  # DUPLICATION: exchange descriptors, dereference both locally
            descriptor_bytes = 0.0
            for spec in (mapping.src, mapping.dst):
                if spec.regular:
                    descriptor_bytes += 64.0
                else:
                    # A replicated translation table travels whole: the
                    # paper's practicality caveat made quantitative.
                    descriptor_bytes += 16.0 * workload.nelems
            terms["alpha"] += 2 * p.alpha
            terms["occupancy"] += 2 * (p.o_send + p.o_recv)
            terms["beta"] += descriptor_bytes / p.bandwidth
            deref_side(mapping.src, 2 * n_per)
            deref_side(mapping.dst, 2 * n_per)
        return terms

    def simulate_reuse(
        self,
        counts: np.ndarray,
        itemsize: int,
        policy: ExecutorPolicy,
        reuse: int,
        segments: int = 1,
        fused: bool = False,
        terms: dict[str, float] | None = None,
    ) -> float:
        """Elapsed clock of the whole reuse loop (max over ranks).

        One cold-start move costs less than the steady state: later
        steps start from the skewed clocks earlier steps left behind,
        and inside a tight candidate band that drift decides rankings.
        The chain replays steps exactly (each step's end clocks feed
        the next step's start) until the per-rank per-step deltas
        converge — the skew saturates within a few steps — then
        extrapolates the remainder with the steady-state delta
        (:data:`CHAIN_CAP` bounds the exact prefix either way).
        """
        clocks = self.simulate_move(
            counts, itemsize, policy, segments=segments, fused=fused,
            terms=terms,
        )
        steps = min(reuse, CHAIN_CAP)
        done = 1
        delta = list(clocks)
        step_terms: dict[str, float] = dict(terms) if terms else {}
        while done < steps:
            prev = list(clocks)
            before = dict(terms) if terms is not None else None
            clocks = self.simulate_move(
                counts, itemsize, policy, start_clocks=clocks,
                segments=segments, fused=fused, terms=terms,
            )
            if terms is not None:
                step_terms = {
                    t: v - before.get(t, 0.0) for t, v in terms.items()
                }
            new_delta = [c - p for c, p in zip(clocks, prev)]
            done += 1
            converged = all(
                abs(d - nd) <= 1e-12 * max(abs(nd), 1e-30)
                for d, nd in zip(delta, new_delta)
            )
            delta = new_delta
            if converged:
                break
        if reuse > done:
            tail = reuse - done
            clocks = [c + tail * d for c, d in zip(clocks, delta)]
            if terms is not None:
                for t, v in step_terms.items():
                    terms[t] = terms.get(t, 0.0) + tail * v
        return max(clocks)

    # -- composition --------------------------------------------------------

    def predict(
        self,
        workload: WorkloadSpec,
        mapping: MappingPoint,
        move: tuple[float, dict[str, float]] | None = None,
    ) -> Prediction:
        """Full prediction: exact chained moves + corrected build.

        ``move`` optionally supplies a precomputed ``(move_total,
        move_terms)`` pair from :meth:`simulate_reuse` — the search
        shares one replay across candidates with the same
        (distributions, policy, fusion) instead of re-chaining here.
        """
        counts = pair_matrix(workload, mapping.src, mapping.dst)
        runs = run_matrix(workload, mapping.src, mapping.dst)
        k = workload.narrays
        fused = mapping.fusion > 1 and k > 1
        if move is None:
            move_terms: dict[str, float] = {}
            move_total = self.simulate_reuse(
                counts, workload.itemsize, mapping.policy, workload.reuse,
                segments=k, fused=fused, terms=move_terms,
            )
        else:
            move_total, move_terms = move[0], dict(move[1])
        move_s = move_total / workload.reuse
        build = self.build_terms(workload, mapping, counts, runs)
        build_s = self.coefficients.apply(build)
        total = build_s + move_total
        return Prediction(
            mapping=mapping,
            move_s=move_s,
            build_terms=build,
            build_s=build_s,
            total_s=total,
            move_terms=move_terms,
        )
