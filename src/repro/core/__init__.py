"""Meta-Chaos: the interoperability meta-library (the paper's contribution).

The pieces map one-to-one onto the paper's section 4:

- :mod:`repro.core.region` / :mod:`repro.core.setofregions` — data
  specification (§4.1.1): Regions, gathered into ordered SetOfRegions;
- :mod:`repro.core.linearization` — the virtual linearization (§4.1.2):
  a total order on a SetOfRegions' elements that is *never materialized*;
- :mod:`repro.core.registry` — the interface functions every data
  parallel library must export (§4.1.3) bundled as a
  :class:`~repro.core.registry.LibraryAdapter`;
- :mod:`repro.core.schedule` — communication-schedule computation
  (§4.1.3), in both the *cooperation* and *duplication* variants (§5.1);
- :mod:`repro.core.datamove` — moving data with a schedule (§4.1.4),
  with at most one aggregated message per processor pair;
- :mod:`repro.core.dataplane` — the compiled data plane: offset
  sequences lowered once into cached batched move programs
  (slice / strided-grid / fancy-index) over arbitrarily strided
  local storage, with receive-side buffer donation;
- :mod:`repro.core.plan` — the multi-array extension: k schedules
  compiled into a :class:`~repro.core.plan.MovePlan` whose execution
  fuses every pair's k messages into one;
- :mod:`repro.core.api` — the applications-programmer interface (§4.2):
  ``mc_*`` functions mirroring the paper's example code;
- :mod:`repro.core.universe` — where the two sides live: one program, or
  two coupled programs (§5.2, §5.4).
"""

from repro.core.region import Region, SectionRegion, IndexRegion, MaskRegion
from repro.core.setofregions import SetOfRegions
from repro.core.linearization import Linearization
from repro.core.runs import RunList, copy_runs, group_by_runs
from repro.core.dataplane import (
    MoveProgram,
    accept_local,
    compile_offsets,
    copy_compiled,
)
from repro.core.wire import FusedBuffer, RunEncoded, SegmentHeader, count_runs
from repro.core.registry import (
    LibraryAdapter,
    RemoteHandle,
    ensure_safe_cast,
    get_adapter,
    register_adapter,
    registered_libraries,
)
from repro.core.universe import Universe, SingleProgramUniverse, TwoProgramUniverse
from repro.core.policy import ExecutorPolicy, rotated_order
from repro.core.schedule import (
    CommSchedule,
    ScheduleMethod,
    SchedulePeerStats,
    build_schedule,
)
from repro.core.datamove import data_move, data_move_send, data_move_recv
from repro.core.plan import (
    MovePlan,
    PlanSegment,
    compile_plan,
    plan_move,
    plan_move_recv,
    plan_move_send,
)
from repro.core.cache import ScheduleCache, dist_key, region_key, sor_key
from repro.core.validate import (
    ScheduleStats,
    ScheduleValidationError,
    explain_schedule,
    schedule_stats,
    validate_schedule,
)
from repro.core.api import (
    mc_add_region_to_set,
    mc_compute_plan,
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
    mc_data_move_recv,
    mc_data_move_send,
    mc_new_set_of_regions,
    mc_plan_move_recv,
    mc_plan_move_send,
)

__all__ = [
    "RunList",
    "RunEncoded",
    "copy_runs",
    "count_runs",
    "group_by_runs",
    "MoveProgram",
    "accept_local",
    "compile_offsets",
    "copy_compiled",
    "ensure_safe_cast",
    "Region",
    "SectionRegion",
    "IndexRegion",
    "MaskRegion",
    "SetOfRegions",
    "Linearization",
    "LibraryAdapter",
    "RemoteHandle",
    "get_adapter",
    "register_adapter",
    "registered_libraries",
    "Universe",
    "SingleProgramUniverse",
    "TwoProgramUniverse",
    "CommSchedule",
    "ScheduleMethod",
    "SchedulePeerStats",
    "ExecutorPolicy",
    "rotated_order",
    "build_schedule",
    "data_move",
    "data_move_send",
    "data_move_recv",
    "FusedBuffer",
    "SegmentHeader",
    "MovePlan",
    "PlanSegment",
    "compile_plan",
    "plan_move",
    "plan_move_send",
    "plan_move_recv",
    "mc_new_set_of_regions",
    "mc_add_region_to_set",
    "mc_compute_schedule",
    "mc_compute_plan",
    "mc_copy",
    "mc_copy_many",
    "mc_data_move_send",
    "mc_data_move_recv",
    "mc_plan_move_send",
    "mc_plan_move_recv",
    "ScheduleStats",
    "ScheduleValidationError",
    "validate_schedule",
    "schedule_stats",
    "explain_schedule",
    "ScheduleCache",
    "region_key",
    "sor_key",
    "dist_key",
]
