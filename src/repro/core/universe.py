"""Where the two sides of a copy live: one program or two (§5.1-5.2).

Meta-Chaos moves data between a *source group* of processors (owning the
source data structure) and a *destination group* (owning the destination).
In the single-program case (paper Figure 2) the two groups are the same
processors; in the two-program case (Figure 3) they are disjoint programs
connected by an inter-communicator.

:class:`Universe` hides the difference from the schedule builder and the
data-move engine: group sizes, role membership, sends addressed by group
rank, and the dense piece-distribution exchange used during schedule
construction.

A universe also owns the (optional) reliable-delivery protocol instance
for its data plane: :meth:`Universe.enable_reliability` attaches a
:class:`~repro.vmachine.reliability.Reliability` layer that the data-move
engine routes ``TAG_DATA`` traffic through, while schedule construction
stays on the bare transport (mirroring the paper's Alpha-farm split of a
reliable control path and a UDP data path).  The instance is shared with
the :meth:`Universe.reversed` view, so sequence numbers — and therefore
duplicate suppression — persist across the two directions of a coupled
exchange.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.vmachine.comm import Communicator, InterComm, Request
from repro.vmachine.process import Process
from repro.vmachine.reliability import Reliability, ReliabilityConfig

__all__ = ["Universe", "SingleProgramUniverse", "TwoProgramUniverse"]

# Reserved tag blocks for Meta-Chaos traffic (outside user tag space).
TAG_SCHED_SRCINFO = 1 << 20
TAG_SCHED_PIECES = (1 << 20) + 1
TAG_DATA = (1 << 20) + 2
TAG_DESCRIPTOR = (1 << 20) + 3


class Universe(abc.ABC):
    """Topology of one source-group/destination-group pairing."""

    #: number of processors in the source / destination groups
    src_size: int
    dst_size: int
    #: this processor's rank within each group (None if not a member)
    my_src_rank: int | None
    my_dst_rank: int | None
    #: True when both groups are the same program's processors
    single_program: bool
    #: opt-in reliable-delivery protocol for the data plane (None = bare
    #: transport; see :meth:`enable_reliability`)
    reliability: Reliability | None = None
    #: peer program name, stashed by :func:`repro.core.coupling.
    #: coupled_universe` for failure diagnostics
    peer_program: str | None = None

    @property
    def process(self) -> Process:
        return self._process

    # -- reliable data plane --------------------------------------------------

    def enable_reliability(
        self, config: ReliabilityConfig | None = None
    ) -> Reliability:
        """Attach (or return the existing) reliable-delivery layer.

        Once enabled, :func:`~repro.core.datamove.data_move` and friends
        route every ``TAG_DATA`` payload through the sequence-numbered
        ack/retransmit protocol; schedule-construction traffic keeps using
        the bare transport.  Idempotent: a second call returns the same
        instance (``config`` is only honoured on the first).
        """
        if self.reliability is None:
            self.reliability = Reliability(config)
        return self.reliability

    def rel_fence(self, timeout: float | None = None) -> None:
        """Block until all reliably sent data is acknowledged (no-op when
        reliability is disabled).  See :meth:`~repro.vmachine.reliability.
        Reliability.fence` for failure semantics."""
        if self.reliability is not None:
            self.reliability.fence(timeout=timeout)

    @abc.abstractmethod
    def data_endpoint_to_dst(self):
        """The communicator carrying this processor's traffic *to* the
        destination group (used by the reliable layer for channel state)."""

    @abc.abstractmethod
    def data_endpoint_to_src(self):
        """The communicator carrying this processor's traffic *to/from*
        the source group."""

    # -- addressed sends/recvs ------------------------------------------------

    @abc.abstractmethod
    def send_to_src(self, s: int, payload: Any, tag: int) -> None: ...

    @abc.abstractmethod
    def send_to_dst(self, d: int, payload: Any, tag: int) -> None: ...

    @abc.abstractmethod
    def recv_from_src(
        self, s: int, tag: int, timeout: float | None = None
    ) -> Any: ...

    @abc.abstractmethod
    def recv_from_dst(
        self, d: int, tag: int, timeout: float | None = None
    ) -> Any: ...

    # -- nonblocking / wildcard receives (latency-hiding executor) ------------
    #
    # ``irecv_from_*`` posts a nonblocking receive and returns a
    # :class:`~repro.vmachine.comm.Request`; combined with
    # :func:`~repro.vmachine.comm.waitany` this lets the OVERLAP executor
    # complete messages in *arrival* order instead of group-rank order.
    # ``recv_from_*_any`` is the blocking wildcard variant returning
    # ``(group_rank, payload)``.

    @abc.abstractmethod
    def irecv_from_src(self, s: int, tag: int) -> Request: ...

    @abc.abstractmethod
    def irecv_from_dst(self, d: int, tag: int) -> Request: ...

    @abc.abstractmethod
    def recv_from_src_any(self, tag: int) -> tuple[int, Any]: ...

    @abc.abstractmethod
    def recv_from_dst_any(self, tag: int) -> tuple[int, Any]: ...

    # -- same-physical-processor tests -----------------------------------------

    def same_proc_dst(self, d: int) -> bool:
        """Is destination-group rank ``d`` this very processor?"""
        return self.single_program and self.my_src_rank == d

    def same_proc_src(self, s: int) -> bool:
        """Is source-group rank ``s`` this very processor?"""
        return self.single_program and self.my_dst_rank == s

    @abc.abstractmethod
    def reversed(self) -> "Universe":
        """The same topology with source and destination roles swapped."""


class SingleProgramUniverse(Universe):
    """Both data structures live in one SPMD program (paper Figure 2)."""

    def __init__(self, comm: Communicator):
        self.comm = comm
        self._process = comm.process
        self.src_size = comm.size
        self.dst_size = comm.size
        self.my_src_rank = comm.rank
        self.my_dst_rank = comm.rank
        self.single_program = True

    def send_to_src(self, s: int, payload: Any, tag: int) -> None:
        self.comm.send(s, payload, tag)

    def send_to_dst(self, d: int, payload: Any, tag: int) -> None:
        self.comm.send(d, payload, tag)

    def recv_from_src(
        self, s: int, tag: int, timeout: float | None = None
    ) -> Any:
        return self.comm.recv(s, tag, timeout=timeout)

    def recv_from_dst(
        self, d: int, tag: int, timeout: float | None = None
    ) -> Any:
        return self.comm.recv(d, tag, timeout=timeout)

    def data_endpoint_to_dst(self) -> Communicator:
        return self.comm

    def data_endpoint_to_src(self) -> Communicator:
        return self.comm

    def irecv_from_src(self, s: int, tag: int) -> Request:
        return self.comm.irecv(s, tag)

    def irecv_from_dst(self, d: int, tag: int) -> Request:
        return self.comm.irecv(d, tag)

    def recv_from_src_any(self, tag: int) -> tuple[int, Any]:
        return self.comm.recv_any(tag)

    def recv_from_dst_any(self, tag: int) -> tuple[int, Any]:
        return self.comm.recv_any(tag)

    def reversed(self) -> "SingleProgramUniverse":
        return self


class TwoProgramUniverse(Universe):
    """Source and destination live in two coupled programs (Figure 3).

    Each side constructs its own view: ``role`` names which group *this*
    program plays.  The peer program must construct the complementary
    view with the same ``intercomm`` pairing.
    """

    def __init__(self, comm: Communicator, intercomm: InterComm, role: str):
        if role not in ("src", "dst"):
            raise ValueError("role must be 'src' or 'dst'")
        self.comm = comm
        self.intercomm = intercomm
        self.role = role
        self._process = comm.process
        self.single_program = False
        if role == "src":
            self.src_size = comm.size
            self.dst_size = intercomm.remote_size
            self.my_src_rank = comm.rank
            self.my_dst_rank = None
        else:
            self.src_size = intercomm.remote_size
            self.dst_size = comm.size
            self.my_src_rank = None
            self.my_dst_rank = comm.rank

    def send_to_src(self, s: int, payload: Any, tag: int) -> None:
        if self.role == "src":
            self.comm.send(s, payload, tag)
        else:
            self.intercomm.send(s, payload, tag)

    def send_to_dst(self, d: int, payload: Any, tag: int) -> None:
        if self.role == "dst":
            self.comm.send(d, payload, tag)
        else:
            self.intercomm.send(d, payload, tag)

    def recv_from_src(
        self, s: int, tag: int, timeout: float | None = None
    ) -> Any:
        if self.role == "src":
            return self.comm.recv(s, tag, timeout=timeout)
        return self.intercomm.recv(s, tag, timeout=timeout)

    def recv_from_dst(
        self, d: int, tag: int, timeout: float | None = None
    ) -> Any:
        if self.role == "dst":
            return self.comm.recv(d, tag, timeout=timeout)
        return self.intercomm.recv(d, tag, timeout=timeout)

    def data_endpoint_to_dst(self) -> Communicator | InterComm:
        """Traffic toward the destination group: intra-comm when this
        program *is* the destination group, else the inter-communicator."""
        return self.comm if self.role == "dst" else self.intercomm

    def data_endpoint_to_src(self) -> Communicator | InterComm:
        return self.comm if self.role == "src" else self.intercomm

    def irecv_from_src(self, s: int, tag: int) -> Request:
        if self.role == "src":
            return self.comm.irecv(s, tag)
        return self.intercomm.irecv(s, tag)

    def irecv_from_dst(self, d: int, tag: int) -> Request:
        if self.role == "dst":
            return self.comm.irecv(d, tag)
        return self.intercomm.irecv(d, tag)

    def recv_from_src_any(self, tag: int) -> tuple[int, Any]:
        if self.role == "src":
            return self.comm.recv_any(tag)
        return self.intercomm.recv_any(tag)

    def recv_from_dst_any(self, tag: int) -> tuple[int, Any]:
        if self.role == "dst":
            return self.comm.recv_any(tag)
        return self.intercomm.recv_any(tag)

    def reversed(self) -> "TwoProgramUniverse":
        flipped = "dst" if self.role == "src" else "src"
        rev = TwoProgramUniverse(self.comm, self.intercomm, flipped)
        # The reversed view shares the reliable-delivery protocol instance:
        # sequence numbers must persist across push/pull directions for
        # duplicate suppression to work across retransmissions.
        rev.reliability = self.reliability
        rev.peer_program = self.peer_program
        return rev
