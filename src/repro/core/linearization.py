"""The virtual linearization (§4.1.2).

A :class:`Linearization` is the abstract total order over the elements of
one SetOfRegions, bound to the global shape of the data structure the
regions describe.  It is *virtual*: no buffer of the linearized elements is
ever allocated — the object only answers index arithmetic, and the data
move copies directly from source storage to destination storage.

Moving data from SetOfRegions ``SA`` to ``SB`` is the paper's three-phase
operation ``LSA = l(SA); LSB = LSA; SB = l^-1(LSB)`` with "the same number
of elements in SA as in SB" as the only constraint — enforced by
:func:`check_conformance`.
"""

from __future__ import annotations

import numpy as np

from repro.core.setofregions import SetOfRegions

__all__ = ["Linearization", "check_conformance"]


class Linearization:
    """Total order over one SetOfRegions' elements, bound to a shape."""

    def __init__(self, sor: SetOfRegions, shape: tuple[int, ...]):
        self.sor = sor
        self.shape = tuple(shape)

    @property
    def size(self) -> int:
        return self.sor.size

    def to_global(self, positions: np.ndarray) -> np.ndarray:
        """Flat global indices of the given linearization positions."""
        return self.sor.lin_to_global(positions, self.shape)

    def range_to_global(self, lo: int, hi: int) -> np.ndarray:
        """Flat global indices of the contiguous position range [lo, hi)."""
        return self.to_global(np.arange(lo, hi, dtype=np.int64))

    def all_global(self) -> np.ndarray:
        """Every element's flat global index in linearization order."""
        return self.sor.global_flat(self.shape)

    def check_bijection(self) -> None:
        """Verify no global element appears twice (test helper, O(N log N))."""
        g = self.all_global()
        if len(np.unique(g)) != len(g):
            raise ValueError("SetOfRegions selects some element more than once")


def check_conformance(src: Linearization, dst: Linearization) -> int:
    """Validate that a one-to-one lin-to-lin mapping exists; return its size.

    The mapping between source and destination "is implicit in the separate
    linearizations" — position i of the source linearization is copied to
    position i of the destination linearization — which only requires the
    two sizes to agree.
    """
    if src.size != dst.size:
        raise ValueError(
            f"source SetOfRegions has {src.size} elements but destination "
            f"has {dst.size}; Meta-Chaos copies require equal counts"
        )
    return src.size
