"""Content-keyed schedule caching.

"Since the schedule can often be computed once and reused for multiple
data transfers ... the cost of creating the schedule can be amortized"
(§4.1.4).  The paper's programs hold schedules in variables; this module
makes the reuse automatic: :class:`ScheduleCache` keys schedules by the
*content* of the request — library names, method, both distributions and
both SetOfRegions — so a repeated ``get_or_build`` with an equivalent
request returns the stored schedule without communication.

Keys are computed locally and deterministically, so every rank hits or
misses together (the cache never desynchronizes a collective).  Irregular
distributions and index regions hash their full index content (cached on
the object after the first use — the arrays are immutable by convention).

Fused plans cache the same way: :meth:`ScheduleCache.get_or_build_plan`
keys a :class:`~repro.core.plan.MovePlan` by the tuple of its member
schedules' content keys — member schedules themselves go through (and
populate) the schedule store, so a plan request warms both layers.  When
LRU eviction drops a schedule entry, every plan built over it is
invalidated with it: a later plan request recompiles against the freshly
rebuilt member, never against a stale reference.  The same promise holds
*during* a plan build — if inserting a later member evicts an earlier
one (bounded store), the members are re-resolved before the plan is
cached, and a plan whose member set cannot fit the store at all is
compiled for the caller but never cached (``plan_uncached`` counts
these).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.core.api import mc_compute_schedule
from repro.core.plan import MovePlan, compile_plan
from repro.core.policy import ExecutorPolicy
from repro.core.region import IndexRegion, MaskRegion, Region, SectionRegion
from repro.core.registry import get_adapter
from repro.core.schedule import CommSchedule, ScheduleMethod
from repro.core.setofregions import SetOfRegions

__all__ = ["ScheduleCache", "region_key", "sor_key", "dist_key"]


def _digest(array: np.ndarray) -> str:
    return hashlib.sha1(np.ascontiguousarray(array).tobytes()).hexdigest()


def region_key(region: Region) -> tuple:
    """Deterministic content key of one region."""
    if isinstance(region, SectionRegion):
        s = region.section
        return ("section", s.starts, s.stops, s.steps, region.order)
    if isinstance(region, (IndexRegion, MaskRegion)):
        cached = getattr(region, "_content_key", None)
        if cached is None:
            cached = ("indices", len(region.indices), _digest(region.indices))
            region._content_key = cached
        return cached
    raise TypeError(f"cannot key region type {type(region).__name__}")


def sor_key(sor: SetOfRegions) -> tuple:
    """Deterministic content key of a SetOfRegions."""
    return tuple(region_key(r) for r in sor.regions)


def dist_key(dist) -> tuple:
    """Deterministic content key of a distribution."""
    desc = dist.descriptor()
    if desc.kind == "irregular":
        cached = getattr(dist, "_content_key", None)
        if cached is None:
            owners, nprocs = desc.payload
            cached = ("irregular", nprocs, len(owners), _digest(owners))
            dist._content_key = cached
        return cached
    # Regular descriptors have small, hashable payloads.
    return (desc.kind, _freeze(desc.payload))


def _freeze(obj: Any):
    if isinstance(obj, np.ndarray):
        return ("nd", obj.shape, _digest(obj))
    if isinstance(obj, (tuple, list)):
        return tuple(_freeze(o) for o in obj)
    return obj


class ScheduleCache:
    """Per-rank cache of communication schedules (collective-safe keys).

    One instance per SPMD context (create it inside the SPMD function).
    ``get_or_build`` is collective exactly when it misses — which, because
    keys are pure functions of the request content, happens on every rank
    or on none.

    Entries hold :class:`~repro.core.schedule.CommSchedule` objects whose
    halves are run-compressed, so cached regular schedules cost KBs (a
    few runs per peer), not MBs of dense offsets.

    ``maxsize`` bounds the entry count with LRU eviction (both hits and
    rebuilds refresh recency); the default ``None`` is unbounded.
    Eviction is as deterministic as the keys, so a bounded cache stays
    collective-safe: every rank evicts the same entry at the same call.

    Counter movements mirror into the owning rank's
    :class:`~repro.observe.metrics.MetricsRegistry` under the unified
    ``cache_*`` namespace (``cache_schedule_hits``, ``cache_plan_misses``,
    ... — see the metrics module docstring).  Mirroring is clock-free, so
    enabling it never perturbs modelled logical time.
    """

    def __init__(self, where, maxsize: int | None = None, metrics=None):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be a positive integer (or None)")
        self._where = where
        self._store: OrderedDict[tuple, CommSchedule] = OrderedDict()
        self._plans: OrderedDict[tuple, MovePlan] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0
        #: plans compiled but not cached: the member set cannot fit the
        #: bounded store all at once, so caching would pin stale members
        self.plan_uncached = 0
        if metrics is None:
            # Inside an SPMD run, mirror into the calling rank's registry.
            try:
                from repro.vmachine.process import current_process

                metrics = current_process().metrics
            except (ImportError, RuntimeError):
                metrics = None
        self.metrics = metrics

    def _mirror(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(f"cache_{name}")

    def __len__(self) -> int:
        return len(self._store)

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    def snapshot(self) -> dict[str, int]:
        """Immutable copy of the counters (same shape as
        ``repro.service.ServiceCache.snapshot``)."""
        return {
            "schedule_hits": self.hits,
            "schedule_misses": self.misses,
            "schedule_evictions": self.evictions,
            "schedule_entries": len(self._store),
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_invalidations": self.plan_invalidations,
            "plan_uncached": self.plan_uncached,
            "plan_entries": len(self._plans),
        }

    def validate(self) -> list[tuple]:
        """Check the stale-member invariant over every cached plan.

        Every member of every cached :class:`~repro.core.plan.MovePlan`
        must be *the* object the schedule store currently holds under the
        member's key.  Returns ``(plan_key, member_key)`` pairs for each
        violation — always empty unless the cache has a bug; tests assert
        exactly that.
        """
        violations = []
        for pk, plan in self._plans.items():
            for k, sched in zip(pk, plan.schedules):
                if self._store.get(k) is not sched:
                    violations.append((pk, k))
        return violations

    def get_or_build(
        self,
        src_lib: str,
        src_array,
        src_sor: SetOfRegions,
        dst_lib: str,
        dst_array,
        dst_sor: SetOfRegions,
        method: ScheduleMethod = ScheduleMethod.COOPERATION,
        policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    ) -> CommSchedule:
        """Return a cached schedule for this request, building on miss.

        Single-program only (both arrays local): the key includes both
        distributions, which must be inspectable here.

        ``policy`` is honored on the *build* (it orders the schedule-build
        exchanges) but deliberately excluded from the cache key: the
        schedule content is policy-invariant, so ORDERED and OVERLAP
        requests share entries.  Because a hit skips communication, the
        policy only matters on the collective miss — which the
        deterministic keys guarantee happens on every rank together.
        """
        key = self._request_key(
            src_lib, src_array, src_sor, dst_lib, dst_array, dst_sor, method
        )
        hit = self._store.get(key)
        if hit is not None:
            self.hits += 1
            self._mirror("schedule_hits")
            self._store.move_to_end(key)
            return hit
        self.misses += 1
        self._mirror("schedule_misses")
        sched = mc_compute_schedule(
            self._where, src_lib, src_array, src_sor,
            dst_lib, dst_array, dst_sor, method, policy=policy,
        )
        self._store[key] = sched
        self._enforce_maxsize()
        return sched

    def get_or_build_plan(
        self,
        requests: Sequence[tuple],
        method: ScheduleMethod = ScheduleMethod.COOPERATION,
        policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    ) -> MovePlan:
        """Return a cached fused plan for a sequence of copy requests.

        Each request is a ``(src_lib, src_array, src_sor, dst_lib,
        dst_array, dst_sor)`` tuple; member schedules resolve through
        :meth:`get_or_build` (populating the schedule store — collective
        exactly on schedule misses, which the deterministic keys keep
        synchronized across ranks).  The plan key is the ordered tuple of
        member keys, so two requests fusing the same schedules in the
        same order share one compiled plan.  Plan compilation itself is
        local and never collective, so plan hits/misses need no
        cross-rank agreement — but they get it anyway, for free.
        """
        member_keys = []
        schedules = []
        for req in requests:
            src_lib, src_array, src_sor, dst_lib, dst_array, dst_sor = req
            member_keys.append(
                self._request_key(
                    src_lib, src_array, src_sor,
                    dst_lib, dst_array, dst_sor, method,
                )
            )
            schedules.append(
                self.get_or_build(
                    src_lib, src_array, src_sor,
                    dst_lib, dst_array, dst_sor,
                    method=method, policy=policy,
                )
            )
        plan_key = tuple(member_keys)
        # Building a later member can evict an earlier one from the
        # schedule store (the store is smaller than the member set, or was
        # near-full).  A plan compiled — let alone cached — over such a
        # member would hold the evicted object alive behind the cache's
        # back, exactly what eviction invalidation promises never happens.
        # One re-resolve pass restores residency whenever the store can
        # hold the full member set (re-touched members are most-recent, so
        # the pass only ever evicts older strangers); when it cannot, the
        # plan is compiled for the caller but deliberately *not* cached.
        if not self._members_resident(member_keys, schedules):
            for i, req in enumerate(requests):
                src_lib, src_array, src_sor, dst_lib, dst_array, dst_sor = req
                schedules[i] = self.get_or_build(
                    src_lib, src_array, src_sor,
                    dst_lib, dst_array, dst_sor,
                    method=method, policy=policy,
                )
        cacheable = self._members_resident(member_keys, schedules)
        hit = self._plans.get(plan_key)
        if hit is not None:
            # Defense in depth: a cached plan must reference exactly the
            # store's current member objects; anything else is stale.
            if cacheable and all(
                s_hit is s for s_hit, s in zip(hit.schedules, schedules)
            ):
                self.plan_hits += 1
                self._mirror("plan_hits")
                self._plans.move_to_end(plan_key)
                return hit
            del self._plans[plan_key]
            self.plan_invalidations += 1
            self._mirror("plan_invalidations")
        self.plan_misses += 1
        self._mirror("plan_misses")
        plan = compile_plan(schedules)
        if not cacheable:
            self.plan_uncached += 1
            self._mirror("plan_uncached")
            return plan
        self._plans[plan_key] = plan
        if self.maxsize is not None:
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
                self._mirror("plan_evictions")
        return plan

    # -- internals -----------------------------------------------------------

    def _members_resident(self, member_keys, schedules) -> bool:
        """Is every member schedule the store's current object for its key?"""
        return all(
            self._store.get(k) is s for k, s in zip(member_keys, schedules)
        )

    def _request_key(
        self, src_lib, src_array, src_sor, dst_lib, dst_array, dst_sor, method
    ) -> tuple:
        return (
            src_lib,
            dst_lib,
            method,
            dist_key(get_adapter(src_lib).dist_of(src_array)),
            sor_key(src_sor),
            dist_key(get_adapter(dst_lib).dist_of(dst_array)),
            sor_key(dst_sor),
        )

    def _enforce_maxsize(self) -> None:
        if self.maxsize is None:
            return
        while len(self._store) > self.maxsize:
            evicted_key, _ = self._store.popitem(last=False)
            self.evictions += 1
            self._mirror("schedule_evictions")
            # A plan built over an evicted member is stale by definition:
            # the next schedule request rebuilds the member, and the plan
            # must recompile against the rebuilt object, not hold the old
            # one alive behind the cache's back.
            dependent = [
                pk for pk in self._plans if evicted_key in pk
            ]
            for pk in dependent:
                del self._plans[pk]
                self.plan_invalidations += 1
                self._mirror("plan_invalidations")
