"""Run-compressed offset sequences — the schedule's native representation.

Multiblock Parti describes a regular transfer as a handful of strided
blocks, and that is the whole reason regular schedules are cheap to
build, store and replay (paper §4.1.4, Table 5).  The original port only
*accounted* for that compression (``RunEncoded`` charged the wire an RLE
size) while every schedule still materialized dense O(elements) int64
offset arrays and executed every pack/unpack as a NumPy gather/scatter.

:class:`RunList` makes the run form the actual representation: an
immutable sequence of maximal arithmetic-progression runs
``(start, step, count)`` with vectorized compress/expand, concat,
group-by-key, reverse and length operations, plus the executor fast
paths (:meth:`RunList.gather`, :meth:`RunList.scatter`,
:func:`copy_runs`) that turn regular section moves into contiguous or
strided slice copies at memcpy speed.

Hybrid storage: genuinely irregular sequences (Chaos-style permutations)
would *grow* if stored as runs — three int64 per near-singleton run
versus one per element — so :meth:`RunList.from_dense` keeps such
sequences dense internally and the executor falls back to NumPy fancy
indexing.  Either way the object reports the greedy run count of its
expansion, which is exactly what :func:`repro.core.wire.count_runs`
computes, so wire-size accounting (and therefore every logical clock in
the benchmarks) is byte-for-byte unchanged.

The greedy split (a new run wherever the step between consecutive
elements changes) can overcount the optimal run partition by at most 2x:
each maximal run of an optimal partition contributes at most one extra
singleton at its left boundary.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["RunList", "run_starts", "group_by_runs", "copy_runs", "as_offsets"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_RUNS = np.zeros((0, 3), dtype=np.int64)

#: sentinel distinguishing "never classified" from "classified: not a grid"
_UNSET = object()

#: per-run wire cost in bytes: (start, step, count) as three int64
RUN_WIRE_BYTES = 24
#: fixed wire envelope of a run-encoded sequence
RUN_WIRE_HEADER = 16


def run_starts(arr: np.ndarray) -> np.ndarray:
    """Indices where a new greedy arithmetic-progression run begins.

    Matches :func:`repro.core.wire.count_runs` exactly: for ``n <= 2``
    the whole array is one run; otherwise a new run starts at element
    ``i`` (``i >= 2``) whenever ``arr[i] - arr[i-1]`` differs from
    ``arr[i-1] - arr[i-2]``.
    """
    arr = np.asarray(arr)
    n = len(arr)
    if n == 0:
        return _EMPTY_I64
    if n <= 2:
        return np.zeros(1, dtype=np.int64)
    d = np.diff(arr)
    starts = np.flatnonzero(d[1:] != d[:-1]).astype(np.int64) + 2
    return np.concatenate([np.zeros(1, dtype=np.int64), starts])


def _run_slice(start: int, step: int, count: int) -> slice:
    """The slice addressing an arithmetic run in flat storage (step != 0)."""
    stop = start + step * count
    if step < 0 and stop < 0:
        stop = None  # slicing past the left edge needs an open stop
    return slice(start, stop, step)


def _coalesce_runs(runs: np.ndarray) -> np.ndarray:
    """Vectorized merge of greedy runs that continue one progression.

    Four ``np.diff``-based passes over the run table (never over the
    elements): (1) a singleton bracketing a row jump prepends to the
    following longer run when its gap equals that run's step, (2) a
    singleton continuing the preceding longer run appends to it, (3)
    chains of singletons with a constant gap fuse into one run, (4)
    adjacent longer runs continuing one arithmetic progression fuse.
    The expansion is preserved exactly; only the partition may differ
    from a sequential merge in corner cases (either table is valid).
    """
    starts = runs[:, 0].astype(np.int64, copy=True)
    steps = runs[:, 1].astype(np.int64, copy=True)
    counts = runs[:, 2].astype(np.int64, copy=True)

    # Pass 1: singleton before a longer run whose step matches the gap.
    single = counts == 1
    absorb = single[:-1] & ~single[1:] & (starts[1:] - starts[:-1] == steps[1:])
    if absorb.any():
        idx = np.flatnonzero(absorb)
        starts[idx + 1] = starts[idx]
        counts[idx + 1] += 1
        keep = np.ones(len(starts), dtype=bool)
        keep[idx] = False
        starts, steps, counts = starts[keep], steps[keep], counts[keep]
        single = counts == 1

    # Pass 2: singleton continuing the preceding longer run.
    ends = starts + steps * (counts - 1)
    absorb = single[1:] & ~single[:-1] & (starts[1:] - ends[:-1] == steps[:-1])
    if absorb.any():
        idx = np.flatnonzero(absorb) + 1
        counts[idx - 1] += 1
        keep = np.ones(len(starts), dtype=bool)
        keep[idx] = False
        starts, steps, counts = starts[keep], steps[keep], counts[keep]
        single = counts == 1

    # Pass 3: constant-gap singleton chains (greedy split on values,
    # matching run_starts).
    n = len(starts)
    link = np.zeros(n, dtype=bool)
    link[1:] = single[1:] & single[:-1]
    if link.any():
        gaps = np.zeros(n, dtype=np.int64)
        gaps[1:] = starts[1:] - starts[:-1]
        brk = ~link
        if n >= 3:
            brk[2:] |= link[1:-1] & (gaps[2:] != gaps[1:-1])
        first = np.flatnonzero(brk)
        gcounts = np.diff(np.append(first, n))
        merged_steps = np.where(
            gcounts > 1, gaps[np.minimum(first + 1, n - 1)], steps[first]
        )
        counts = np.add.reduceat(counts, first)
        starts = starts[first]
        steps = merged_steps

    # Pass 4: adjacent longer runs continuing the same progression.
    n = len(starts)
    if n >= 2:
        ends = starts + steps * (counts - 1)
        join = np.zeros(n, dtype=bool)
        join[1:] = (
            (counts[1:] > 1) & (counts[:-1] > 1)
            & (steps[1:] == steps[:-1])
            & (starts[1:] - ends[:-1] == steps[:-1])
        )
        if join.any():
            first = np.flatnonzero(~join)
            counts = np.add.reduceat(counts, first)
            starts = starts[first]
            steps = steps[first]

    return np.column_stack([starts, steps, counts])


class RunList:
    """An immutable int64 offset sequence stored as arithmetic runs.

    Array-like: supports ``len``, ``np.asarray`` (via ``__array__``),
    indexing/slicing (returns plain ndarrays), ``min``/``max`` and
    ``copy`` so existing code treating schedule halves as dense arrays
    keeps working.  Mutation attempts raise (no ``__setitem__``; the
    expansions returned by :meth:`dense` are read-only views).
    """

    __slots__ = ("_runs", "_dense", "_n", "_nruns", "_canon", "_grid", "_program")

    def __init__(self, runs, dense, n: int, nruns: int):
        # Private: use from_dense / from_runs / empty.
        self._runs = runs
        self._dense = dense
        self._n = int(n)
        self._nruns = int(nruns)
        self._canon = None  # lazy executor-side canonical run table
        self._grid = _UNSET  # lazy uniform-grid classification of _canon
        self._program = None  # lazy compiled MoveProgram (repro.core.dataplane)

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "RunList":
        return cls(_EMPTY_RUNS, None, 0, 0)

    @classmethod
    def from_dense(cls, arr: np.ndarray) -> "RunList":
        """Greedily compress a dense offset array.

        Keeps the dense form internally (copied, read-only) when the run
        form would not be smaller — three int64 per run versus one per
        element — so irregular Chaos-style offsets never pay a 3x memory
        penalty.  The input is never aliased.
        """
        if isinstance(arr, RunList):
            return arr
        arr = np.asarray(arr, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("offset sequences must be one-dimensional")
        n = len(arr)
        if n == 0:
            return cls.empty()
        starts_idx = run_starts(arr)
        k = len(starts_idx)
        if k > 1 and 3 * k >= n:
            dense = np.array(arr, dtype=np.int64, copy=True)
            dense.setflags(write=False)
            return cls(None, dense, n, k)
        counts = np.diff(np.append(starts_idx, n))
        starts = arr[starts_idx]
        second = arr[np.minimum(starts_idx + 1, n - 1)]
        steps = np.where(counts > 1, second - starts, 0)
        runs = np.column_stack([starts, steps, counts]).astype(np.int64)
        runs.setflags(write=False)
        return cls(runs, None, n, k)

    @classmethod
    def from_runs(cls, runs: Iterable) -> "RunList":
        """Build from explicit ``(start, step, count)`` triples.

        The triples are taken as-is (``nruns`` is their number); counts
        must be positive.  Note the greedy run count of the expansion may
        be smaller if adjacent triples are mergeable — schedules built
        from dense offsets always go through :meth:`from_dense`, which is
        canonical.
        """
        runs = np.array(list(runs) if not isinstance(runs, np.ndarray) else runs,
                        dtype=np.int64).reshape(-1, 3)
        if len(runs) and (runs[:, 2] <= 0).any():
            raise ValueError("run counts must be positive")
        n = int(runs[:, 2].sum()) if len(runs) else 0
        out = np.array(runs, copy=True)
        out.setflags(write=False)
        return cls(out, None, n, len(runs))

    # -- introspection ------------------------------------------------------

    @property
    def nruns(self) -> int:
        """Greedy run count of the expansion (wire-accounting quantity)."""
        return self._nruns

    @property
    def is_compressed(self) -> bool:
        """True when stored in run form (False: hybrid dense storage)."""
        return self._runs is not None

    @property
    def runs(self) -> np.ndarray:
        """The ``(R, 3)`` array of ``(start, step, count)`` triples.

        Computed on demand (O(n)) for hybrid-dense sequences.
        """
        if self._runs is not None:
            return self._runs
        arr = self._dense
        starts_idx = run_starts(arr)
        counts = np.diff(np.append(starts_idx, len(arr)))
        starts = arr[starts_idx]
        second = arr[np.minimum(starts_idx + 1, len(arr) - 1)]
        steps = np.where(counts > 1, second - starts, 0)
        runs = np.column_stack([starts, steps, counts]).astype(np.int64)
        runs.setflags(write=False)
        return runs

    @property
    def nbytes_wire(self) -> int:
        """Run-encoded transport size (matches ``RunEncoded.nbytes``)."""
        return RUN_WIRE_HEADER + RUN_WIRE_BYTES * self._nruns

    @property
    def nbytes_memory(self) -> int:
        """In-memory footprint of the canonical stored representation."""
        if self._runs is not None:
            return RUN_WIRE_HEADER + self._runs.nbytes
        return RUN_WIRE_HEADER + self._dense.nbytes

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        form = "runs" if self.is_compressed else "dense"
        return f"RunList(n={self._n}, nruns={self._nruns}, storage={form})"

    # -- expansion and array protocol --------------------------------------

    def dense(self) -> np.ndarray:
        """The expanded offset array (read-only; fresh for run storage)."""
        if self._dense is not None:
            return self._dense
        out = self.expand()
        out.setflags(write=False)
        return out

    def expand(self) -> np.ndarray:
        """A freshly materialized (writable) dense expansion."""
        if self._dense is not None:
            return np.array(self._dense, copy=True)
        runs = self._runs
        if len(runs) == 0:
            return np.zeros(0, dtype=np.int64)
        starts, steps, counts = runs[:, 0], runs[:, 1], runs[:, 2]
        offsets = np.arange(self._n, dtype=np.int64)
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        return np.repeat(starts, counts) + np.repeat(steps, counts) * (offsets - bases)

    def __array__(self, dtype=None, copy=None):
        out = self.dense()
        if dtype is not None and out.dtype != dtype:
            return out.astype(dtype)
        if copy:
            return np.array(out, copy=True)
        return out

    def __getitem__(self, key):
        return self.dense()[key]

    def __iter__(self) -> Iterator[int]:
        return iter(self.dense())

    def copy(self) -> np.ndarray:
        """A writable dense copy (mirrors ``ndarray.copy``)."""
        return self.expand()

    def min(self):
        if self._n == 0:
            raise ValueError("zero-size RunList has no minimum")
        if self._runs is None:
            return self._dense.min()
        ends = self._runs[:, 0] + self._runs[:, 1] * (self._runs[:, 2] - 1)
        return min(int(self._runs[:, 0].min()), int(ends.min()))

    def max(self):
        if self._n == 0:
            raise ValueError("zero-size RunList has no maximum")
        if self._runs is None:
            return self._dense.max()
        ends = self._runs[:, 0] + self._runs[:, 1] * (self._runs[:, 2] - 1)
        return max(int(self._runs[:, 0].max()), int(ends.max()))

    # -- structural ops -----------------------------------------------------

    def reverse(self) -> "RunList":
        """The same offsets in reverse order (still run-compressed)."""
        if self._runs is None:
            return RunList.from_dense(self._dense[::-1])
        if len(self._runs) == 0:
            return RunList.empty()
        starts, steps, counts = (
            self._runs[::-1, 0], self._runs[::-1, 1], self._runs[::-1, 2]
        )
        rev = np.column_stack([starts + steps * (counts - 1), -steps, counts])
        rev = rev.astype(np.int64)
        rev.setflags(write=False)
        return RunList(rev, None, self._n, self._nruns)

    @classmethod
    def concat(cls, pieces: Iterable["RunList | np.ndarray"]) -> "RunList":
        """Concatenate offset sequences.

        All-compressed inputs are concatenated in run space (O(total
        runs), boundary runs kept distinct); any dense piece forces a
        canonical greedy recompression of the dense concatenation.
        """
        pieces = [p if isinstance(p, RunList) else cls.from_dense(p) for p in pieces]
        pieces = [p for p in pieces if len(p)]
        if not pieces:
            return cls.empty()
        if len(pieces) == 1:
            return pieces[0]
        if all(p.is_compressed for p in pieces):
            runs = np.vstack([p._runs for p in pieces]).astype(np.int64)
            runs.setflags(write=False)
            return cls(runs, None, sum(p._n for p in pieces), len(runs))
        return cls.from_dense(np.concatenate([p.dense() for p in pieces]))

    # -- executor fast paths -------------------------------------------------

    def _exec_runs(self) -> np.ndarray:
        """Canonical run table used by the executors (cached).

        The greedy splitter is within 2x of optimal but brackets every
        row jump of a 2-D section with a singleton run; merging adjacent
        runs that continue the same arithmetic progression recovers the
        optimal partition (regular section moves become a uniform grid).
        The merge itself is vectorized (``np.diff``-based passes; see
        :func:`_coalesce_runs`) — no per-run Python loop even at build
        time.  Wire/clock accounting never sees this table —
        ``nruns``/``nbytes`` keep the greedy counts.
        """
        if self._canon is None:
            runs = self._runs
            if runs is None or len(runs) < 2:
                self._canon = runs
            else:
                self._canon = _coalesce_runs(runs)
        return self._canon

    def _uniform_grid(self):
        """``(start0, rowstep, step, nrows, count)`` when the canonical run
        table is a uniform 2-D grid: every run has the same positive step
        and count and the starts form a positive arithmetic progression.
        This is exactly a strided section of a row-major array (Multiblock
        Parti's strided-block descriptor) and executes as one strided-view
        copy.  Returns ``None`` for anything else.

        The classification is cached alongside ``_canon`` — steady-state
        plan loops replay the answer without re-analysis.
        """
        if self._grid is not _UNSET:
            return self._grid
        self._grid = None
        runs = self._exec_runs()
        if runs is None or len(runs) < 2:
            return None
        step = int(runs[0, 1])
        count = int(runs[0, 2])
        if step <= 0 or not (runs[:, 1] == step).all() or not (runs[:, 2] == count).all():
            return None
        starts = runs[:, 0]
        rowstep = int(starts[1] - starts[0])
        if rowstep <= 0 or not (np.diff(starts) == rowstep).all():
            return None
        self._grid = (int(starts[0]), rowstep, step, len(runs), count)
        return self._grid

    def gather(self, data: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``data[self]`` executed through the compiled move program.

        One batched NumPy operation: a basic-slice copy for a single
        run, strided-view block copies for (piecewise-)uniform grids, a
        single fancy-index gather through the cached dense index vector
        for irregular sequences.  ``data`` may be any strided ndarray —
        1-D views of any step, C-contiguous blocks, or arbitrary
        non-contiguous layouts (addressed through cached coordinates).

        ``out``, when given, receives the gathered elements in place (it
        must be 1-D, length ``len(self)``, dtype-compatible) and is
        returned — the fused-plan executor packs segments straight into a
        pooled staging buffer this way, with zero intermediate
        allocation.
        """
        from repro.core.dataplane import compile_offsets

        return compile_offsets(self).gather(data, out=out)

    def scatter(self, data: np.ndarray, values: np.ndarray) -> None:
        """``data[self] = values`` executed through the compiled program.

        Matches NumPy scatter semantics for repeated offsets (the last
        occurrence wins), though valid schedules never repeat a
        destination slot.  Interleaved grids (rows closer than one row's
        extent) never take the strided-view store — every such program
        is marked scatter-unsafe at compile time and runs as a fancy
        scatter instead.
        """
        from repro.core.dataplane import compile_offsets

        compile_offsets(self).scatter(data, values)


def as_offsets(offsets) -> "RunList | np.ndarray":
    """Normalize an offsets argument for the executors.

    RunLists pass through; anything else becomes an int64 ndarray (the
    legacy dense path).
    """
    if isinstance(offsets, RunList):
        return offsets
    return np.asarray(offsets, dtype=np.int64)


def group_by_runs(keys: np.ndarray, values: np.ndarray) -> dict[int, "RunList"]:
    """Partition ``values`` by ``keys`` (stable) into compressed RunLists.

    The run-aware successor of the schedule builder's ``_group_by``:
    same grouping, but each group is stored in run form when regular.
    """
    if len(keys) == 0:
        return {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = np.asarray(values)[order]
    uniq, starts = np.unique(sorted_keys, return_index=True)
    bounds = np.append(starts, len(sorted_keys))
    return {
        int(k): RunList.from_dense(sorted_values[bounds[i] : bounds[i + 1]])
        for i, k in enumerate(uniq)
    }


def copy_runs(
    src_data: np.ndarray,
    src_offsets,
    dst_data: np.ndarray,
    dst_offsets,
) -> None:
    """``dst_data[dst_offsets] = src_data[src_offsets]``, compiled.

    Both sides lower to cached move programs and the copy executes as
    aligned direct stores — slice-to-slice for single runs, strided
    view-to-view for matched grids — with a single fancy-to-fancy
    assignment through the cached index vectors for everything else
    (the Chaos-style irregular path).  No staging buffer in any case,
    and either data side may be an arbitrarily strided ndarray.
    """
    from repro.core.dataplane import compile_offsets, copy_compiled

    src_offsets = as_offsets(src_offsets)
    dst_offsets = as_offsets(dst_offsets)
    copy_compiled(
        compile_offsets(src_offsets), src_data,
        compile_offsets(dst_offsets), dst_data,
    )
