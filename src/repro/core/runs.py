"""Run-compressed offset sequences — the schedule's native representation.

Multiblock Parti describes a regular transfer as a handful of strided
blocks, and that is the whole reason regular schedules are cheap to
build, store and replay (paper §4.1.4, Table 5).  The original port only
*accounted* for that compression (``RunEncoded`` charged the wire an RLE
size) while every schedule still materialized dense O(elements) int64
offset arrays and executed every pack/unpack as a NumPy gather/scatter.

:class:`RunList` makes the run form the actual representation: an
immutable sequence of maximal arithmetic-progression runs
``(start, step, count)`` with vectorized compress/expand, concat,
group-by-key, reverse and length operations, plus the executor fast
paths (:meth:`RunList.gather`, :meth:`RunList.scatter`,
:func:`copy_runs`) that turn regular section moves into contiguous or
strided slice copies at memcpy speed.

Hybrid storage: genuinely irregular sequences (Chaos-style permutations)
would *grow* if stored as runs — three int64 per near-singleton run
versus one per element — so :meth:`RunList.from_dense` keeps such
sequences dense internally and the executor falls back to NumPy fancy
indexing.  Either way the object reports the greedy run count of its
expansion, which is exactly what :func:`repro.core.wire.count_runs`
computes, so wire-size accounting (and therefore every logical clock in
the benchmarks) is byte-for-byte unchanged.

The greedy split (a new run wherever the step between consecutive
elements changes) can overcount the optimal run partition by at most 2x:
each maximal run of an optimal partition contributes at most one extra
singleton at its left boundary.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["RunList", "run_starts", "group_by_runs", "copy_runs", "as_offsets"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_RUNS = np.zeros((0, 3), dtype=np.int64)

#: per-run wire cost in bytes: (start, step, count) as three int64
RUN_WIRE_BYTES = 24
#: fixed wire envelope of a run-encoded sequence
RUN_WIRE_HEADER = 16


def run_starts(arr: np.ndarray) -> np.ndarray:
    """Indices where a new greedy arithmetic-progression run begins.

    Matches :func:`repro.core.wire.count_runs` exactly: for ``n <= 2``
    the whole array is one run; otherwise a new run starts at element
    ``i`` (``i >= 2``) whenever ``arr[i] - arr[i-1]`` differs from
    ``arr[i-1] - arr[i-2]``.
    """
    arr = np.asarray(arr)
    n = len(arr)
    if n == 0:
        return _EMPTY_I64
    if n <= 2:
        return np.zeros(1, dtype=np.int64)
    d = np.diff(arr)
    starts = np.flatnonzero(d[1:] != d[:-1]).astype(np.int64) + 2
    return np.concatenate([np.zeros(1, dtype=np.int64), starts])


def _run_slice(start: int, step: int, count: int) -> slice:
    """The slice addressing an arithmetic run in flat storage (step != 0)."""
    stop = start + step * count
    if step < 0 and stop < 0:
        stop = None  # slicing past the left edge needs an open stop
    return slice(start, stop, step)


class RunList:
    """An immutable int64 offset sequence stored as arithmetic runs.

    Array-like: supports ``len``, ``np.asarray`` (via ``__array__``),
    indexing/slicing (returns plain ndarrays), ``min``/``max`` and
    ``copy`` so existing code treating schedule halves as dense arrays
    keeps working.  Mutation attempts raise (no ``__setitem__``; the
    expansions returned by :meth:`dense` are read-only views).
    """

    __slots__ = ("_runs", "_dense", "_n", "_nruns", "_canon")

    def __init__(self, runs, dense, n: int, nruns: int):
        # Private: use from_dense / from_runs / empty.
        self._runs = runs
        self._dense = dense
        self._n = int(n)
        self._nruns = int(nruns)
        self._canon = None  # lazy executor-side canonical run table

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "RunList":
        return cls(_EMPTY_RUNS, None, 0, 0)

    @classmethod
    def from_dense(cls, arr: np.ndarray) -> "RunList":
        """Greedily compress a dense offset array.

        Keeps the dense form internally (copied, read-only) when the run
        form would not be smaller — three int64 per run versus one per
        element — so irregular Chaos-style offsets never pay a 3x memory
        penalty.  The input is never aliased.
        """
        if isinstance(arr, RunList):
            return arr
        arr = np.asarray(arr, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("offset sequences must be one-dimensional")
        n = len(arr)
        if n == 0:
            return cls.empty()
        starts_idx = run_starts(arr)
        k = len(starts_idx)
        if k > 1 and 3 * k >= n:
            dense = np.array(arr, dtype=np.int64, copy=True)
            dense.setflags(write=False)
            return cls(None, dense, n, k)
        counts = np.diff(np.append(starts_idx, n))
        starts = arr[starts_idx]
        second = arr[np.minimum(starts_idx + 1, n - 1)]
        steps = np.where(counts > 1, second - starts, 0)
        runs = np.column_stack([starts, steps, counts]).astype(np.int64)
        runs.setflags(write=False)
        return cls(runs, None, n, k)

    @classmethod
    def from_runs(cls, runs: Iterable) -> "RunList":
        """Build from explicit ``(start, step, count)`` triples.

        The triples are taken as-is (``nruns`` is their number); counts
        must be positive.  Note the greedy run count of the expansion may
        be smaller if adjacent triples are mergeable — schedules built
        from dense offsets always go through :meth:`from_dense`, which is
        canonical.
        """
        runs = np.array(list(runs) if not isinstance(runs, np.ndarray) else runs,
                        dtype=np.int64).reshape(-1, 3)
        if len(runs) and (runs[:, 2] <= 0).any():
            raise ValueError("run counts must be positive")
        n = int(runs[:, 2].sum()) if len(runs) else 0
        out = np.array(runs, copy=True)
        out.setflags(write=False)
        return cls(out, None, n, len(runs))

    # -- introspection ------------------------------------------------------

    @property
    def nruns(self) -> int:
        """Greedy run count of the expansion (wire-accounting quantity)."""
        return self._nruns

    @property
    def is_compressed(self) -> bool:
        """True when stored in run form (False: hybrid dense storage)."""
        return self._runs is not None

    @property
    def runs(self) -> np.ndarray:
        """The ``(R, 3)`` array of ``(start, step, count)`` triples.

        Computed on demand (O(n)) for hybrid-dense sequences.
        """
        if self._runs is not None:
            return self._runs
        arr = self._dense
        starts_idx = run_starts(arr)
        counts = np.diff(np.append(starts_idx, len(arr)))
        starts = arr[starts_idx]
        second = arr[np.minimum(starts_idx + 1, len(arr) - 1)]
        steps = np.where(counts > 1, second - starts, 0)
        runs = np.column_stack([starts, steps, counts]).astype(np.int64)
        runs.setflags(write=False)
        return runs

    @property
    def nbytes_wire(self) -> int:
        """Run-encoded transport size (matches ``RunEncoded.nbytes``)."""
        return RUN_WIRE_HEADER + RUN_WIRE_BYTES * self._nruns

    @property
    def nbytes_memory(self) -> int:
        """In-memory footprint of the canonical stored representation."""
        if self._runs is not None:
            return RUN_WIRE_HEADER + self._runs.nbytes
        return RUN_WIRE_HEADER + self._dense.nbytes

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        form = "runs" if self.is_compressed else "dense"
        return f"RunList(n={self._n}, nruns={self._nruns}, storage={form})"

    # -- expansion and array protocol --------------------------------------

    def dense(self) -> np.ndarray:
        """The expanded offset array (read-only; fresh for run storage)."""
        if self._dense is not None:
            return self._dense
        out = self.expand()
        out.setflags(write=False)
        return out

    def expand(self) -> np.ndarray:
        """A freshly materialized (writable) dense expansion."""
        if self._dense is not None:
            return np.array(self._dense, copy=True)
        runs = self._runs
        if len(runs) == 0:
            return np.zeros(0, dtype=np.int64)
        starts, steps, counts = runs[:, 0], runs[:, 1], runs[:, 2]
        offsets = np.arange(self._n, dtype=np.int64)
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        return np.repeat(starts, counts) + np.repeat(steps, counts) * (offsets - bases)

    def __array__(self, dtype=None, copy=None):
        out = self.dense()
        if dtype is not None and out.dtype != dtype:
            return out.astype(dtype)
        if copy:
            return np.array(out, copy=True)
        return out

    def __getitem__(self, key):
        return self.dense()[key]

    def __iter__(self) -> Iterator[int]:
        return iter(self.dense())

    def copy(self) -> np.ndarray:
        """A writable dense copy (mirrors ``ndarray.copy``)."""
        return self.expand()

    def min(self):
        if self._n == 0:
            raise ValueError("zero-size RunList has no minimum")
        if self._runs is None:
            return self._dense.min()
        ends = self._runs[:, 0] + self._runs[:, 1] * (self._runs[:, 2] - 1)
        return min(int(self._runs[:, 0].min()), int(ends.min()))

    def max(self):
        if self._n == 0:
            raise ValueError("zero-size RunList has no maximum")
        if self._runs is None:
            return self._dense.max()
        ends = self._runs[:, 0] + self._runs[:, 1] * (self._runs[:, 2] - 1)
        return max(int(self._runs[:, 0].max()), int(ends.max()))

    # -- structural ops -----------------------------------------------------

    def reverse(self) -> "RunList":
        """The same offsets in reverse order (still run-compressed)."""
        if self._runs is None:
            return RunList.from_dense(self._dense[::-1])
        if len(self._runs) == 0:
            return RunList.empty()
        starts, steps, counts = (
            self._runs[::-1, 0], self._runs[::-1, 1], self._runs[::-1, 2]
        )
        rev = np.column_stack([starts + steps * (counts - 1), -steps, counts])
        rev = rev.astype(np.int64)
        rev.setflags(write=False)
        return RunList(rev, None, self._n, self._nruns)

    @classmethod
    def concat(cls, pieces: Iterable["RunList | np.ndarray"]) -> "RunList":
        """Concatenate offset sequences.

        All-compressed inputs are concatenated in run space (O(total
        runs), boundary runs kept distinct); any dense piece forces a
        canonical greedy recompression of the dense concatenation.
        """
        pieces = [p if isinstance(p, RunList) else cls.from_dense(p) for p in pieces]
        pieces = [p for p in pieces if len(p)]
        if not pieces:
            return cls.empty()
        if len(pieces) == 1:
            return pieces[0]
        if all(p.is_compressed for p in pieces):
            runs = np.vstack([p._runs for p in pieces]).astype(np.int64)
            runs.setflags(write=False)
            return cls(runs, None, sum(p._n for p in pieces), len(runs))
        return cls.from_dense(np.concatenate([p.dense() for p in pieces]))

    # -- executor fast paths -------------------------------------------------

    def _exec_runs(self) -> np.ndarray:
        """Canonical run table used by the executors (cached).

        The greedy splitter is within 2x of optimal but brackets every
        row jump of a 2-D section with a singleton run; merging adjacent
        runs that continue the same arithmetic progression recovers the
        optimal partition (fewer loop iterations, and regular section
        moves become a uniform grid).  Wire/clock accounting never sees
        this table — ``nruns``/``nbytes`` keep the greedy counts.
        """
        if self._canon is None:
            runs = self._runs
            if runs is None or len(runs) < 2:
                self._canon = runs
            else:
                out: list[list[int]] = []
                for s, st, c in runs.tolist():
                    if out:
                        ps, pst, pc = out[-1]
                        if pc == 1:
                            d = s - ps
                            if c == 1:
                                out[-1] = [ps, d, 2]
                                continue
                            if d == st:
                                out[-1] = [ps, st, c + 1]
                                continue
                        else:
                            if s - (ps + pst * (pc - 1)) == pst and (
                                c == 1 or st == pst
                            ):
                                out[-1] = [ps, pst, pc + c]
                                continue
                    out.append([s, st, c])
                self._canon = np.asarray(out, dtype=np.int64).reshape(-1, 3)
        return self._canon

    def _uniform_grid(self):
        """``(start0, rowstep, step, nrows, count)`` when the canonical run
        table is a uniform 2-D grid: every run has the same positive step
        and count and the starts form a positive arithmetic progression.
        This is exactly a strided section of a row-major array (Multiblock
        Parti's strided-block descriptor) and executes as one strided-view
        copy.  Returns ``None`` for anything else.
        """
        runs = self._exec_runs()
        if runs is None or len(runs) < 2:
            return None
        step = int(runs[0, 1])
        count = int(runs[0, 2])
        if step <= 0 or not (runs[:, 1] == step).all() or not (runs[:, 2] == count).all():
            return None
        starts = runs[:, 0]
        rowstep = int(starts[1] - starts[0])
        if rowstep <= 0 or not (np.diff(starts) == rowstep).all():
            return None
        return int(starts[0]), rowstep, step, len(runs), count

    def _grid_view(self, data: np.ndarray, grid) -> "np.ndarray | None":
        """Strided (nrows, count) view of ``data`` covering the grid."""
        start0, rowstep, step, nrows, count = grid
        last = start0 + (nrows - 1) * rowstep + (count - 1) * step
        if data.ndim != 1 or last >= len(data):
            return None
        st = data.strides[0]
        return np.lib.stride_tricks.as_strided(
            data[start0:], shape=(nrows, count), strides=(rowstep * st, step * st)
        )

    def gather(self, data: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``data[self]`` — slice copies per run, fancy indexing fallback.

        A uniform run grid (the regular 2-D section move) is gathered in
        one vectorized strided-view copy instead of a per-run loop.

        ``out``, when given, receives the gathered elements in place (it
        must be 1-D, length ``len(self)``, dtype-compatible) and is
        returned — the fused-plan executor packs segments straight into a
        pooled staging buffer this way, with zero intermediate
        allocation.
        """
        if out is not None and len(out) != self._n:
            raise ValueError(
                f"gather out buffer has {len(out)} slots for {self._n} elements"
            )
        if self._runs is None:
            if out is None:
                return data[self._dense]
            out[...] = data[self._dense]
            return out
        grid = self._uniform_grid()
        if grid is not None:
            view = self._grid_view(data, grid)
            if view is not None:
                if out is None:
                    out = np.empty(grid[3] * grid[4], dtype=data.dtype)
                out.reshape(grid[3], grid[4])[...] = view
                return out
        if out is None:
            out = np.empty(self._n, dtype=data.dtype)
        pos = 0
        for start, step, count in self._exec_runs().tolist():
            if step == 0:
                out[pos : pos + count] = data[start]
            elif step == 1:
                out[pos : pos + count] = data[start : start + count]
            else:
                out[pos : pos + count] = data[_run_slice(start, step, count)]
            pos += count
        return out

    def scatter(self, data: np.ndarray, values: np.ndarray) -> None:
        """``data[self] = values`` — slice stores per run.

        Matches NumPy scatter semantics for repeated offsets (the last
        occurrence wins), though valid schedules never repeat a
        destination slot.
        """
        if self._runs is None:
            data[self._dense] = values
            return
        values = np.asarray(values)
        scalar = values.ndim == 0
        grid = self._uniform_grid()
        # Writable strided-view store; rows must not interleave so every
        # target element is written exactly once (gather has no such need).
        if grid is not None and grid[1] >= grid[4] * grid[2]:
            view = self._grid_view(data, grid)
            if view is not None:
                view[...] = values if scalar else values.reshape(grid[3], grid[4])
                return
        pos = 0
        for start, step, count in self._exec_runs().tolist():
            chunk = values if scalar else values[pos : pos + count]
            if step == 0:
                data[start] = chunk if scalar else chunk[-1]
            elif step == 1:
                data[start : start + count] = chunk
            else:
                data[_run_slice(start, step, count)] = chunk
            pos += count


def as_offsets(offsets) -> "RunList | np.ndarray":
    """Normalize an offsets argument for the executors.

    RunLists pass through; anything else becomes an int64 ndarray (the
    legacy dense path).
    """
    if isinstance(offsets, RunList):
        return offsets
    return np.asarray(offsets, dtype=np.int64)


def group_by_runs(keys: np.ndarray, values: np.ndarray) -> dict[int, "RunList"]:
    """Partition ``values`` by ``keys`` (stable) into compressed RunLists.

    The run-aware successor of the schedule builder's ``_group_by``:
    same grouping, but each group is stored in run form when regular.
    """
    if len(keys) == 0:
        return {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = np.asarray(values)[order]
    uniq, starts = np.unique(sorted_keys, return_index=True)
    bounds = np.append(starts, len(sorted_keys))
    return {
        int(k): RunList.from_dense(sorted_values[bounds[i] : bounds[i + 1]])
        for i, k in enumerate(uniq)
    }


def _aligned_segments(a: RunList, b: RunList):
    """Yield ``(a_start, a_step, b_start, b_step, count)`` over the common
    refinement of two equal-length compressed run partitions."""
    a_runs = a.runs.tolist()
    b_runs = b.runs.tolist()
    ia = ib = 0
    oa = ob = 0  # progress within the current run on each side
    while ia < len(a_runs) and ib < len(b_runs):
        a_start, a_step, a_count = a_runs[ia]
        b_start, b_step, b_count = b_runs[ib]
        take = min(a_count - oa, b_count - ob)
        yield (a_start + a_step * oa, a_step, b_start + b_step * ob, b_step, take)
        oa += take
        ob += take
        if oa == a_count:
            ia += 1
            oa = 0
        if ob == b_count:
            ib += 1
            ob = 0


def copy_runs(
    src_data: np.ndarray,
    src_offsets,
    dst_data: np.ndarray,
    dst_offsets,
) -> None:
    """``dst_data[dst_offsets] = src_data[src_offsets]`` with run fast paths.

    When both sides are compressed RunLists the copy runs as aligned
    slice-to-slice stores over the common run refinement — no
    intermediate buffer, memcpy speed for stride-1 runs.  Any dense side
    falls back to NumPy fancy indexing (the Chaos-style irregular path).
    """
    src_offsets = as_offsets(src_offsets)
    dst_offsets = as_offsets(dst_offsets)
    if len(src_offsets) != len(dst_offsets):
        raise ValueError(
            f"copy sides differ in length: {len(src_offsets)} vs {len(dst_offsets)}"
        )
    if (
        isinstance(src_offsets, RunList)
        and isinstance(dst_offsets, RunList)
        and src_offsets.is_compressed
        and dst_offsets.is_compressed
    ):
        for s0, sstep, d0, dstep, count in _aligned_segments(src_offsets, dst_offsets):
            if sstep == 0:
                chunk = src_data[s0]
                if dstep == 0:
                    dst_data[d0] = chunk
                elif count == 1:
                    dst_data[d0] = chunk
                else:
                    dst_data[_run_slice(d0, dstep, count) if dstep != 1
                             else slice(d0, d0 + count)] = chunk
                continue
            src_sl = slice(s0, s0 + count) if sstep == 1 else _run_slice(s0, sstep, count)
            if dstep == 0:
                # All writes land on one slot: the last source element wins.
                dst_data[d0] = src_data[s0 + sstep * (count - 1)]
            elif dstep == 1:
                dst_data[d0 : d0 + count] = src_data[src_sl]
            else:
                dst_data[_run_slice(d0, dstep, count)] = src_data[src_sl]
        return
    dst_data[np.asarray(dst_offsets)] = src_data[np.asarray(src_offsets)]
