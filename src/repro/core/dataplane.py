"""Compiled data plane: cached executable move programs over strided views.

The executors used to walk every schedule half run-by-run in Python
(``RunList.gather``/``scatter``/``copy_runs``), and every adapter forced
its local storage through ``ascontiguousarray().reshape(-1)``.  Both are
pure implementation overhead — the logical-clock model never sees them —
so this module lowers each offset sequence *once* into a
:class:`MoveProgram` and caches it on the ``RunList``.  Execution is
then one batched NumPy operation per (schedule half, dtype):

``slice``
    A single arithmetic run executes as one basic-slice copy.
``grid``
    A piecewise-uniform run table (rows of equal step and count whose
    starts advance by a constant pitch, possibly several such blocks)
    executes as one ``as_strided`` view copy per block — the Multiblock
    Parti strided-section move at memcpy speed.
``index``
    Anything irregular executes as a single fancy-index gather/scatter
    over a lazily built, cached dense int64 index vector (built at most
    once per schedule half, regardless of how many times the plan runs).

Programs are layout-agnostic on the data side: a 1-D view of any stride
is addressed directly through its own strides, a C-contiguous ndarray is
flattened zero-copy, and an arbitrarily strided ndarray (transposed,
sliced) is addressed through cached ``unravel_index`` coordinates — one
batched advanced-indexing operation, no ``ascontiguousarray`` staging
copy anywhere on the hot path.

Nothing here touches the clock: callers charge exactly what they charged
before (``charge_pack(len(offsets))`` equals ``charge_pack(prog.n)``),
wire accounting keeps reading the greedy ``nruns``, and the compiled
execution is bit-identical to the per-run reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.runs import RunList, _run_slice

__all__ = [
    "MoveProgram",
    "accept_local",
    "compile_offsets",
    "copy_compiled",
    "flat_view",
    "read_flat",
    "write_flat",
]

_as_strided = np.lib.stride_tricks.as_strided

#: grid lowering is only worth it when blocks are much fewer than rows;
#: past this many blocks (unless the table is tiny) fall back to ``index``.
_GRID_MAX_BLOCKS = 4
_GRID_ROWS_PER_BLOCK = 4


def flat_view(a: np.ndarray) -> "np.ndarray | None":
    """A zero-copy 1-D logical-order view of ``a``, or None.

    1-D arrays of any stride pass through unchanged; C-contiguous
    arrays flatten for free.  Non-contiguous multi-dimensional arrays
    have no 1-D view — callers go through :meth:`MoveProgram.coords`.
    """
    if a.ndim == 1:
        return a
    if a.flags.c_contiguous:
        return a.reshape(-1)
    return None


def accept_local(local) -> np.ndarray:
    """Zero-copy normalization of caller storage for an adapter array.

    1-D input (any stride) is kept; C-contiguous input flattens as a
    view; any other strided ndarray (transposed, sliced) is kept as-is
    and addressed in place by the compiled programs.  Never copies —
    the distributed array always aliases the caller's memory, so
    in-place updates stay visible on both sides.
    """
    local = np.asarray(local)
    flat = flat_view(local)
    return flat if flat is not None else local


def read_flat(a: np.ndarray) -> np.ndarray:
    """``a`` in flat logical (C) order — a view when possible, else a copy.

    Only for cold paths (oracles, global gathers); the executors never
    call this.
    """
    flat = flat_view(a)
    return flat if flat is not None else a.reshape(-1)


def write_flat(a: np.ndarray, values: np.ndarray) -> None:
    """Assign ``values`` (flat logical order) into ``a``, any layout."""
    flat = flat_view(a)
    if flat is not None:
        flat[...] = values
    else:
        np.copyto(a, np.asarray(values).reshape(a.shape))


class MoveProgram:
    """A compiled, cached, executable lowering of one offset sequence."""

    __slots__ = (
        "n", "kind", "start", "step", "grids", "scatter_safe",
        "_source", "_index", "_coords",
    )

    def __init__(self, n, kind, *, start=0, step=1, grids=None,
                 scatter_safe=True, source=None, index=None):
        self.n = int(n)
        self.kind = kind          # "empty" | "slice" | "grid" | "index"
        self.start = int(start)   # slice kind
        self.step = int(step)     # slice kind
        self.grids = grids        # grid kind: (G, 5) int64 rows
        self.scatter_safe = scatter_safe
        self._source = source     # RunList/ndarray the index is built from
        self._index = index       # cached dense int64 index vector
        self._coords = None       # shape -> unravel_index coords cache

    def __repr__(self) -> str:
        return f"MoveProgram(n={self.n}, kind={self.kind!r})"

    # -- cached lowerings ----------------------------------------------------

    def index(self) -> np.ndarray:
        """The dense int64 index vector (built lazily, cached forever)."""
        if self._index is None:
            src = self._source
            if isinstance(src, RunList):
                idx = src.dense()
            else:
                idx = np.asarray(src, dtype=np.int64)
            self._index = idx
        return self._index

    def coords(self, shape: tuple) -> tuple:
        """Cached ``unravel_index`` coordinates addressing ``shape``.

        This is how a program executes against a non-contiguous
        multi-dimensional target: flat logical offsets translate through
        the shape once, then every replay is a single advanced-indexing
        operation through the view's own strides.
        """
        if self._coords is None:
            self._coords = {}
        got = self._coords.get(shape)
        if got is None:
            got = np.unravel_index(self.index(), shape)
            self._coords[shape] = got
        return got

    def is_full_span(self, size: int) -> bool:
        """True when the program is exactly ``[0, size)`` ascending by 1.

        The buffer-donation eligibility test: such an unpack overwrites
        every element of the destination in order, so adopting the
        received buffer as the new storage is indistinguishable from
        copying through it.
        """
        return (
            self.kind == "slice" and self.start == 0 and self.step == 1
            and self.n == size
        )

    # -- executors -----------------------------------------------------------

    def gather(self, data: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """``data[program]`` batched; fresh array unless ``out`` is given."""
        if out is not None and out.size != self.n:
            raise ValueError(
                f"gather out buffer has {out.size} slots for {self.n} elements"
            )
        if self.kind == "empty":
            return out if out is not None else np.empty(0, dtype=data.dtype)
        flat = flat_view(data)
        if flat is None:
            picked = data[self.coords(data.shape)]
            if out is None:
                return picked
            out[...] = picked
            return out
        if self.kind == "slice":
            seg = flat[_run_slice(self.start, self.step, self.n)]
            if out is None:
                return np.array(seg)
            out[...] = seg
            return out
        if self.kind == "grid":
            if out is None:
                out = np.empty(self.n, dtype=data.dtype)
            st = flat.strides[0]
            pos = 0
            for start0, rowstep, step, nrows, count in self.grids.tolist():
                view = _as_strided(
                    flat[start0:], shape=(nrows, count),
                    strides=(rowstep * st, step * st),
                )
                m = nrows * count
                seg = out[pos : pos + m]
                if seg.flags.c_contiguous:
                    seg.reshape(nrows, count)[...] = view
                else:
                    seg[...] = view.reshape(-1)
                pos += m
            return out
        picked = flat[self.index()]
        if out is None:
            return picked
        out[...] = picked
        return out

    def scatter(self, data: np.ndarray, values: np.ndarray) -> None:
        """``data[program] = values`` batched (last write wins, as NumPy)."""
        if self.kind == "empty":
            return
        values = np.asarray(values)
        scalar = values.ndim == 0
        flat = flat_view(data)
        if flat is None:
            data[self.coords(data.shape)] = values
            return
        if self.kind == "slice":
            flat[_run_slice(self.start, self.step, self.n)] = values
            return
        if self.kind == "grid" and self.scatter_safe:
            st = flat.strides[0]
            pos = 0
            for start0, rowstep, step, nrows, count in self.grids.tolist():
                view = _as_strided(
                    flat[start0:], shape=(nrows, count),
                    strides=(rowstep * st, step * st),
                )
                if scalar:
                    view[...] = values
                else:
                    view[...] = values[pos : pos + nrows * count].reshape(nrows, count)
                pos += nrows * count
            return
        flat[self.index()] = values


def _piecewise_grids(runs: np.ndarray):
    """Lower a canonical run table to ``(start0, rowstep, step, nrows,
    count)`` grid blocks, or None when the table is too irregular.

    Consecutive runs join a block while their (step, count) match and
    their starts advance by one constant positive pitch; a block whose
    rows would interleave (``rowstep < count * step``) still gathers
    fine but is marked scatter-unsafe by the caller.
    """
    R = len(runs)
    starts = runs[:, 0]
    counts = runs[:, 2]
    # count-1 runs carry step 0 in canonical form; as a grid row any
    # positive step addresses the same single element.
    steps = np.where(counts == 1, 1, runs[:, 1])
    if (steps <= 0).any() or (starts < 0).any():
        return None
    sd = starts[1:] - starts[:-1]
    pair = (steps[1:] == steps[:-1]) & (counts[1:] == counts[:-1]) & (sd > 0)
    new = np.ones(R, dtype=bool)
    new[1:] = ~pair
    if R >= 3:
        new[2:] |= pair[1:] & pair[:-1] & (sd[1:] != sd[:-1])
    first = np.flatnonzero(new)
    G = len(first)
    if G > _GRID_MAX_BLOCKS and G * _GRID_ROWS_PER_BLOCK > R:
        return None
    nrows = np.diff(np.append(first, R))
    start0 = starts[first]
    count = counts[first]
    step = steps[first]
    pitch = np.where(
        nrows > 1,
        sd[np.minimum(first, R - 2)],  # gap first->second row; unused if nrows==1
        count * step,
    )
    return np.column_stack([start0, pitch, step, nrows, count]).astype(np.int64)


def _compile_runlist(rl: RunList) -> MoveProgram:
    n = len(rl)
    if n == 0:
        return MoveProgram(0, "empty")
    if not rl.is_compressed:
        return MoveProgram(n, "index", source=rl, index=rl.dense())
    runs = rl._exec_runs()
    if len(runs) == 1:
        start, step, count = (int(v) for v in runs[0])
        if count == 1:
            return MoveProgram(1, "slice", start=start, step=1, source=rl)
        if step != 0:
            return MoveProgram(n, "slice", start=start, step=step, source=rl)
        return MoveProgram(n, "index", source=rl)
    grids = _piecewise_grids(runs)
    if grids is not None:
        safe = bool((grids[:, 1] >= grids[:, 4] * grids[:, 2]).all())
        return MoveProgram(n, "grid", grids=grids, scatter_safe=safe, source=rl)
    return MoveProgram(n, "index", source=rl)


def _program_cache_note(name: str) -> None:
    """Mirror a MoveProgram memo hit/miss into the calling rank's metrics
    (``cache_program_*``).  Counter bumps are clock-free; outside an SPMD
    run this is a no-op."""
    try:
        from repro.vmachine.process import current_process

        current_process().metrics.incr(f"cache_program_{name}")
    except (ImportError, RuntimeError):
        pass


def compile_offsets(offsets) -> MoveProgram:
    """Compile an offsets argument to its cached :class:`MoveProgram`.

    RunLists memoize the program (slot ``_program``) so steady-state
    plan replays pay zero re-analysis; plain ndarrays compile to an
    uncached ``index`` program over the array itself (zero-copy).
    Memo hits and misses surface as ``cache_program_{hits,misses}``
    counters on the rank's :class:`~repro.observe.metrics.MetricsRegistry`.
    """
    if isinstance(offsets, MoveProgram):
        return offsets
    if isinstance(offsets, RunList):
        prog = offsets._program
        if prog is None:
            prog = _compile_runlist(offsets)
            offsets._program = prog
            _program_cache_note("misses")
        else:
            _program_cache_note("hits")
        return prog
    arr = np.asarray(offsets, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("offset sequences must be one-dimensional")
    return MoveProgram(len(arr), "index", source=arr, index=arr)


def _grid_shapes_match(a: MoveProgram, b: MoveProgram) -> bool:
    return (
        a.grids is not None and b.grids is not None
        and len(a.grids) == len(b.grids)
        and bool((a.grids[:, 3] == b.grids[:, 3]).all())
        and bool((a.grids[:, 4] == b.grids[:, 4]).all())
    )


def copy_compiled(
    src_prog: MoveProgram, src_data: np.ndarray,
    dst_prog: MoveProgram, dst_data: np.ndarray,
) -> None:
    """``dst_data[dst_prog] = src_data[src_prog]`` with no staging buffer.

    Aligned structures copy directly (slice-to-slice, matched grid
    blocks view-to-view); everything else runs as one fancy-to-fancy
    assignment through the cached index vectors.  NumPy's overlap
    detection keeps same-array copies correct.
    """
    if src_prog.n != dst_prog.n:
        raise ValueError(
            f"copy sides differ in length: {src_prog.n} vs {dst_prog.n}"
        )
    if src_prog.n == 0:
        return
    sflat = flat_view(src_data)
    dflat = flat_view(dst_data)
    if sflat is not None and dflat is not None:
        if src_prog.kind == "slice" and dst_prog.kind == "slice":
            dflat[_run_slice(dst_prog.start, dst_prog.step, dst_prog.n)] = \
                sflat[_run_slice(src_prog.start, src_prog.step, src_prog.n)]
            return
        if (
            src_prog.kind == "grid" and dst_prog.kind == "grid"
            and dst_prog.scatter_safe and _grid_shapes_match(src_prog, dst_prog)
        ):
            sst = sflat.strides[0]
            dst = dflat.strides[0]
            for (s0, srow, sstep, nrows, count), (d0, drow, dstep, _, _) in zip(
                src_prog.grids.tolist(), dst_prog.grids.tolist()
            ):
                sview = _as_strided(sflat[s0:], shape=(nrows, count),
                                    strides=(srow * sst, sstep * sst))
                dview = _as_strided(dflat[d0:], shape=(nrows, count),
                                    strides=(drow * dst, dstep * dst))
                dview[...] = sview
            return
        dflat[dst_prog.index()] = sflat[src_prog.index()]
        return
    picked = (
        src_data[src_prog.coords(src_data.shape)] if sflat is None
        else src_prog.gather(sflat)
    )
    if dflat is None:
        dst_data[dst_prog.coords(dst_data.shape)] = picked
    else:
        dst_prog.scatter(dflat, picked)
