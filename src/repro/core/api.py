"""The Meta-Chaos applications programmer interface (§4.2, Figure 9).

Thin, paper-shaped wrappers over the schedule builder and data-move
engine.  The four steps of §4.2 map to:

1. specify source objects        — Regions + :func:`mc_new_set_of_regions`
                                   / :func:`mc_add_region_to_set`
2. specify destination objects   — same, for the destination structure
3. compute the schedule          — :func:`mc_compute_schedule`
4. move the data                 — :func:`mc_data_move_send` /
                                   :func:`mc_data_move_recv`, or the
                                   one-program one-shot :func:`mc_copy`

Where the paper passes a library identifier (``MC_ComputeSched(HPF,
...)``) these functions take the registered adapter name (e.g. ``"hpf"``,
``"chaos"``, ``"blockparti"``, ``"pcxx"``).

Multi-array extension: applications moving several arrays per timestep
compile their schedules into one :class:`~repro.core.plan.MovePlan`
(:func:`mc_compute_plan`) and execute it with :func:`mc_copy_many` /
:func:`mc_plan_move_send` / :func:`mc_plan_move_recv` — one *fused*
message per processor pair instead of one per schedule per pair.  The
single-schedule entry points never route through the plan machinery, so
their modelled clocks are unchanged.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Sequence

from repro.core.datamove import data_move, data_move_recv, data_move_send
from repro.core.plan import (
    MovePlan,
    compile_plan,
    plan_move,
    plan_move_recv,
    plan_move_send,
)
from repro.core.policy import ExecutorPolicy
from repro.core.region import Region
from repro.core.schedule import CommSchedule, ScheduleMethod, build_schedule
from repro.core.setofregions import SetOfRegions
from repro.core.universe import SingleProgramUniverse, Universe
from repro.vmachine.comm import Communicator

__all__ = [
    "mc_new_set_of_regions",
    "mc_add_region_to_set",
    "mc_compute_schedule",
    "mc_compute_plan",
    "mc_copy",
    "mc_copy_many",
    "mc_data_move_send",
    "mc_data_move_recv",
    "mc_plan_move_send",
    "mc_plan_move_recv",
    "ExecutorPolicy",
]


def mc_new_set_of_regions(*regions: Region) -> SetOfRegions:
    """Create a SetOfRegions (``MC_NewSetOfRegion``), optionally pre-filled."""
    sor = SetOfRegions()
    for r in regions:
        sor.add(r)
    return sor


def mc_add_region_to_set(region: Region, sor: SetOfRegions) -> SetOfRegions:
    """Append a Region to a SetOfRegions (``MC_AddRegion2Set``)."""
    return sor.add(region)


def _as_universe(where: Universe | Communicator) -> Universe:
    if isinstance(where, Universe):
        return where
    return SingleProgramUniverse(where)


def _resolve_policy(
    policy: ExecutorPolicy | str,
    schedule_or_plan: Any,
    universe: Universe,
) -> ExecutorPolicy:
    """Coerce ``policy``, resolving the string ``"auto"`` per rank from
    the schedule/plan via the cost model's closed form
    (:func:`repro.autotune.choose_policy`).  Lazily imported so the core
    data plane has no hard dependency on the auto-mapper."""
    if isinstance(policy, str) and policy.lower() == "auto":
        from repro.autotune.auto import choose_policy

        return choose_policy(schedule_or_plan, universe.my_src_rank)
    return ExecutorPolicy.coerce(policy)


def _maybe_span(name: str):
    """A ``span(name)`` on the calling rank's process, or a no-op outside
    a virtual-machine run (plan compilation is purely local and legal to
    call from the host)."""
    try:
        from repro.vmachine.process import current_process

        proc = current_process()
    except (ImportError, RuntimeError):
        return nullcontext()
    return proc.span(name)


def mc_compute_schedule(
    where: Universe | Communicator,
    src_lib: str,
    src_array: Any,
    src_sor: SetOfRegions | None,
    dst_lib: str,
    dst_array: Any,
    dst_sor: SetOfRegions | None,
    method: ScheduleMethod = ScheduleMethod.COOPERATION,
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
) -> CommSchedule:
    """Collectively compute a communication schedule (``MC_ComputeSched``).

    ``where`` is the world the copy spans: an intra-program communicator
    (both structures in one program) or a
    :class:`~repro.core.universe.TwoProgramUniverse` built from an
    inter-communicator.  The schedule can be reused for any number of data
    moves, and is symmetric (use :meth:`CommSchedule.reverse` to copy the
    other way).

    ``policy`` orders the schedule-build exchanges
    (:class:`~repro.core.policy.ExecutorPolicy`); the resulting schedule is
    identical under either policy.  ``"auto"`` defers the choice to the
    executors (the build itself runs ORDERED — there is no schedule yet
    to choose from).
    """
    if isinstance(policy, str) and policy.lower() == "auto":
        policy = ExecutorPolicy.ORDERED
    return build_schedule(
        _as_universe(where),
        src_lib, src_array, src_sor,
        dst_lib, dst_array, dst_sor,
        method=method,
        policy=policy,
    )


def mc_copy(
    where: Universe | Communicator,
    schedule: CommSchedule,
    src_array: Any,
    dst_array: Any,
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """One-shot data move within a single program (``MC_Copy``).

    ``policy=ExecutorPolicy.OVERLAP`` selects the latency-hiding executor
    (rotated injection + arrival-order completion); the destination array
    is identical either way.

    ``donate=True`` enables buffer donation on the receive side: a
    message that overwrites a destination's entire local storage (exact
    dtype) is adopted as that storage instead of scattered through.
    Opt-in because adoption rebinds ``array.local`` — callers holding
    aliases of the old storage keep the old bytes.

    To run the move over an unreliable (fault-injected) transport, pass a
    :class:`~repro.core.universe.Universe` on which
    :meth:`~repro.core.universe.Universe.enable_reliability` has been
    called — the data plane then travels the ack/retransmit protocol.
    ``timeout`` bounds each blocking receive and the final fence.
    """
    universe = _as_universe(where)
    if not universe.single_program:
        raise ValueError(
            "mc_copy is the single-program move; coupled programs call "
            "mc_data_move_send / mc_data_move_recv on their own side"
        )
    policy = _resolve_policy(policy, schedule, universe)
    with universe.process.span("copy:execute"):
        data_move(schedule, src_array, dst_array, universe, policy=policy,
                  timeout=timeout, donate=donate)


def mc_compute_plan(schedules: Sequence[CommSchedule]) -> MovePlan:
    """Compile schedules into a fused :class:`~repro.core.plan.MovePlan`.

    Purely local (no communication, no logical-time charge): each rank
    reorganizes its own schedule halves into per-peer pack/unpack
    programs.  All member schedules must span the same universe shape.
    The plan is reusable for any number of :func:`mc_copy_many` calls,
    exactly as a schedule is for :func:`mc_copy`.
    """
    with _maybe_span("plan:compile"):
        return compile_plan(schedules)


def mc_copy_many(
    where: Universe | Communicator,
    plan_or_schedules: MovePlan | Sequence[CommSchedule],
    src_arrays: Sequence[Any],
    dst_arrays: Sequence[Any],
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> MovePlan:
    """Fused one-shot move of several arrays within a single program.

    Equivalent to calling :func:`mc_copy` once per ``(schedule,
    src_array, dst_array)`` triple — same destination bytes, same
    element order — but every processor pair exchanges **one** message
    carrying all schedules' segments, saving ``k-1`` message latencies
    per pair.  Accepts a precompiled :class:`~repro.core.plan.MovePlan`
    or a schedule sequence (compiled on the fly); returns the plan so
    loops can reuse the compilation.
    """
    universe = _as_universe(where)
    if not universe.single_program:
        raise ValueError(
            "mc_copy_many is the single-program move; coupled programs "
            "call mc_plan_move_send / mc_plan_move_recv on their own side"
        )
    plan = (
        plan_or_schedules
        if isinstance(plan_or_schedules, MovePlan)
        else mc_compute_plan(plan_or_schedules)
    )
    policy = _resolve_policy(policy, plan, universe)
    with universe.process.span("plan:execute"):
        plan_move(plan, src_arrays, dst_arrays, universe, policy=policy,
                  timeout=timeout, donate=donate)
    return plan


def mc_plan_move_send(
    where: Universe | Communicator,
    plan: MovePlan,
    src_arrays: Sequence[Any],
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
) -> None:
    """Send half of a fused multi-array move (source-group processors)."""
    universe = _as_universe(where)
    policy = _resolve_policy(policy, plan, universe)
    plan_move_send(plan, src_arrays, universe, policy=policy,
                   timeout=timeout)


def mc_plan_move_recv(
    where: Universe | Communicator,
    plan: MovePlan,
    dst_arrays: Sequence[Any],
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Receive half of a fused multi-array move (destination group)."""
    universe = _as_universe(where)
    policy = _resolve_policy(policy, plan, universe)
    plan_move_recv(plan, dst_arrays, universe, policy=policy,
                   timeout=timeout, donate=donate)


def mc_data_move_send(
    where: Universe | Communicator,
    schedule: CommSchedule,
    src_array: Any,
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
) -> None:
    """Send half of a data move (``MC_DataMoveSend``)."""
    universe = _as_universe(where)
    policy = _resolve_policy(policy, schedule, universe)
    data_move_send(schedule, src_array, universe, policy=policy,
                   timeout=timeout)


def mc_data_move_recv(
    where: Universe | Communicator,
    schedule: CommSchedule,
    dst_array: Any,
    policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Receive half of a data move (``MC_DataMoveRecv``)."""
    universe = _as_universe(where)
    policy = _resolve_policy(policy, schedule, universe)
    data_move_recv(schedule, dst_array, universe, policy=policy,
                   timeout=timeout, donate=donate)
