"""Wire encoding of schedule index arrays.

Real data parallel runtime schedules do not ship per-element offset lists
when the offsets are regular: Multiblock Parti describes a transfer as a
handful of strided blocks, and that is why exchanging schedule pieces for
regular meshes is cheap (paper Table 5) while Chaos-style pointwise lists
are as large as the data (paper section 5.1, translation tables).

:class:`RunEncoded` captures that: it wraps an offset sequence as a
:class:`~repro.core.runs.RunList` and reports, as its transport size, the
size of the run-length encoding (maximal arithmetic-progression runs, 24
bytes per run).  The compressed form is what actually travels: the
receiver expands lazily, on first access to :attr:`RunEncoded.array` —
regular schedule pieces stay layout-sized end to end, and the cost model
charges the wire exactly what it always did.
"""

from __future__ import annotations

import numpy as np

from repro.core.runs import RUN_WIRE_BYTES, RUN_WIRE_HEADER, RunList, run_starts

__all__ = ["RunEncoded", "count_runs"]


def count_runs(arr: np.ndarray) -> int:
    """Number of maximal arithmetic-progression runs in ``arr`` (greedy).

    Vectorized: a new run starts wherever the step between consecutive
    elements changes.  The greedy split can overcount the optimal run
    partition by at most 2x (a singleton after each break), which is an
    acceptable bound for wire-size accounting.
    """
    if isinstance(arr, RunList):
        return arr.nruns
    return len(run_starts(arr))


class RunEncoded:
    """An int64 offset sequence that travels in run-compressed form.

    ``nbytes`` (what the virtual transport charges) is the run encoding's
    size: ``(start, step, count)`` per run plus a fixed header —
    unchanged from when instances carried dense arrays.  ``array``
    expands on first access and caches the dense (writable) form, so
    receiver-side code that merges pieces keeps working verbatim while
    senders of regular pieces never materialize O(elements) storage.
    """

    __slots__ = ("runlist", "_array")

    def __init__(self, array: np.ndarray | RunList):
        # from_dense never aliases its input: instances travel through the
        # zero-copy transport and must not see builder-side mutations.
        self.runlist = RunList.from_dense(array)
        self._array: np.ndarray | None = None

    @property
    def array(self) -> np.ndarray:
        """The dense expansion (lazy; cached after the first access)."""
        if self._array is None:
            self._array = self.runlist.expand()
        return self._array

    @property
    def nruns(self) -> int:
        return self.runlist.nruns

    @property
    def nbytes(self) -> int:
        """Run-encoded wire size: (start, step, count) per run."""
        return RUN_WIRE_HEADER + RUN_WIRE_BYTES * self.runlist.nruns

    def __len__(self) -> int:
        return len(self.runlist)

    def __repr__(self) -> str:
        return f"RunEncoded(n={len(self.runlist)}, runs={self.runlist.nruns})"
