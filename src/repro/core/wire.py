"""Wire encoding of schedule index arrays.

Real data parallel runtime schedules do not ship per-element offset lists
when the offsets are regular: Multiblock Parti describes a transfer as a
handful of strided blocks, and that is why exchanging schedule pieces for
regular meshes is cheap (paper Table 5) while Chaos-style pointwise lists
are as large as the data (paper section 5.1, translation tables).

:class:`RunEncoded` captures that: it wraps an offset sequence as a
:class:`~repro.core.runs.RunList` and reports, as its transport size, the
size of the run-length encoding (maximal arithmetic-progression runs, 24
bytes per run).  The compressed form is what actually travels: the
receiver expands lazily, on first access to :attr:`RunEncoded.array` —
regular schedule pieces stay layout-sized end to end, and the cost model
charges the wire exactly what it always did.

:class:`FusedBuffer` is the wire format of a *fused* data message (the
:mod:`repro.core.plan` executor): one staging buffer carrying several
schedules' packed segments to the same destination, each described by a
:class:`SegmentHeader` (schedule id, element dtype, element count).
Segment payloads start at 16-byte-aligned offsets computed
deterministically from the headers alone — :func:`segment_layout` — so
sender and receiver agree on the layout without shipping per-segment
offsets, and every dtype view into the byte buffer is aligned.  The
buffer's :attr:`~FusedBuffer.nbytes` (what the virtual transport charges)
is a fixed fused header, one fixed header per segment, plus the padded
payload bytes — the honest wire size of the concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runs import RUN_WIRE_BYTES, RUN_WIRE_HEADER, RunList, run_starts

__all__ = [
    "FUSED_HEADER_BYTES",
    "SEGMENT_ALIGN",
    "SEGMENT_HEADER_BYTES",
    "FusedBuffer",
    "RunEncoded",
    "SegmentHeader",
    "count_runs",
    "segment_layout",
]


def count_runs(arr: np.ndarray) -> int:
    """Number of maximal arithmetic-progression runs in ``arr`` (greedy).

    Vectorized: a new run starts wherever the step between consecutive
    elements changes.  The greedy split can overcount the optimal run
    partition by at most 2x (a singleton after each break), which is an
    acceptable bound for wire-size accounting.
    """
    if isinstance(arr, RunList):
        return arr.nruns
    return len(run_starts(arr))


class RunEncoded:
    """An int64 offset sequence that travels in run-compressed form.

    ``nbytes`` (what the virtual transport charges) is the run encoding's
    size: ``(start, step, count)`` per run plus a fixed header —
    unchanged from when instances carried dense arrays.  ``array``
    expands on first access and caches the dense (writable) form, so
    receiver-side code that merges pieces keeps working verbatim while
    senders of regular pieces never materialize O(elements) storage.
    """

    __slots__ = ("runlist", "_array")

    def __init__(self, array: np.ndarray | RunList):
        # from_dense never aliases its input: instances travel through the
        # zero-copy transport and must not see builder-side mutations.
        self.runlist = RunList.from_dense(array)
        self._array: np.ndarray | None = None

    @property
    def array(self) -> np.ndarray:
        """The dense expansion (lazy; cached after the first access)."""
        if self._array is None:
            self._array = self.runlist.expand()
        return self._array

    @property
    def nruns(self) -> int:
        return self.runlist.nruns

    @property
    def nbytes(self) -> int:
        """Run-encoded wire size: (start, step, count) per run."""
        return RUN_WIRE_HEADER + RUN_WIRE_BYTES * self.runlist.nruns

    def __len__(self) -> int:
        return len(self.runlist)

    def __repr__(self) -> str:
        return f"RunEncoded(n={len(self.runlist)}, runs={self.runlist.nruns})"


# ---------------------------------------------------------------------------
# fused data messages (plan executor wire format)
# ---------------------------------------------------------------------------

#: fixed per-message header of a fused buffer (segment count, total bytes)
FUSED_HEADER_BYTES = 16
#: fixed per-segment header (schedule id, dtype code, element count)
SEGMENT_HEADER_BYTES = 16
#: alignment of each segment's payload within the staging buffer; a
#: power of two >= every supported itemsize, so dtype views are aligned
SEGMENT_ALIGN = 16


@dataclass(frozen=True)
class SegmentHeader:
    """Self-describing header of one schedule's segment in a fused message.

    ``schedule_id`` is the segment's position in the plan's schedule
    tuple — the receiver validates it against its own receive program, so
    a sender/receiver plan mismatch fails loudly instead of scattering
    elements through the wrong offsets.
    """

    schedule_id: int
    dtype: str
    count: int

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)

    @property
    def data_nbytes(self) -> int:
        return self.count * self.itemsize


def _pad(nbytes: int) -> int:
    """Round ``nbytes`` up to the segment alignment."""
    return -(-nbytes // SEGMENT_ALIGN) * SEGMENT_ALIGN


def segment_layout(
    headers: tuple[SegmentHeader, ...]
) -> tuple[tuple[int, ...], int]:
    """(payload byte offsets, total padded payload bytes) of a fused buffer.

    Deterministic in the headers alone: segment ``i`` starts at the
    running sum of the padded sizes of segments ``0..i-1``.  Both sender
    (pack) and receiver (unpack) compute the same layout, so no offset
    table travels on the wire.
    """
    offsets = []
    cursor = 0
    for h in headers:
        offsets.append(cursor)
        cursor += _pad(h.data_nbytes)
    return tuple(offsets), cursor


class FusedBuffer:
    """One fused data message: per-segment headers + one staging buffer.

    ``data`` is a 1-D ``uint8`` array whose capacity is at least the
    layout's total padded payload bytes (arena size classes round up).
    :meth:`segment` returns the aligned dtype view of one segment's
    payload — writable on the sender (pack target), read by the receiver
    (unpack source).

    The buffer may be leased from the sender's
    :class:`~repro.vmachine.message.PackArena`; the *receiver* calls
    :meth:`release` after unpacking the last segment, returning the
    staging storage to the sender's pool.  Safe on the zero-copy
    transport because a fused message has exactly one receiver;
    fault-layer duplicates share the payload reference but are suppressed
    by the reliable layer *without* unpacking, and ``release`` is
    idempotent besides.  Under copy-on-send debug mode the transport
    deep-copies the payload: :meth:`__deepcopy__` copies the bytes and
    severs the lease, so releasing the copy never recycles pooled
    storage.
    """

    __slots__ = ("headers", "data", "_offsets", "_lease")

    def __init__(self, headers, data: np.ndarray, lease=None):
        self.headers = tuple(headers)
        self.data = data
        self._offsets, total = segment_layout(self.headers)
        if len(data) < total:
            raise ValueError(
                f"fused staging buffer has {len(data)} bytes for a "
                f"{total}-byte segment layout"
            )
        self._lease = lease

    @property
    def nsegments(self) -> int:
        return len(self.headers)

    @property
    def nbytes(self) -> int:
        """Wire size: fused header + per-segment headers + padded payload.

        This is what the virtual transport charges (``payload_nbytes``
        finds it via the ``.nbytes`` attribute) — the honest cost of the
        concatenated message, including alignment padding and the
        self-describing headers.
        """
        _, total = segment_layout(self.headers)
        return (
            FUSED_HEADER_BYTES
            + SEGMENT_HEADER_BYTES * len(self.headers)
            + total
        )

    def segment(self, i: int) -> np.ndarray:
        """Aligned dtype view of segment ``i``'s payload."""
        h = self.headers[i]
        start = self._offsets[i]
        raw = self.data[start : start + h.data_nbytes]
        return raw.view(np.dtype(h.dtype))

    def release(self) -> None:
        """Return the staging buffer to the sender's arena (idempotent;
        no-op for unleased buffers)."""
        lease = self._lease
        self._lease = None
        if lease is not None:
            lease.release()

    def sever_lease(self) -> None:
        """Detach the arena lease *without* recycling the storage.

        Called when a segment of this buffer was donated as a
        destination array's storage: the bytes live on in the array, so
        they must never return to the sender's pool (a later lease
        would scribble over the array).  A subsequent :meth:`release`
        becomes a no-op; the arena allocates fresh storage on its next
        miss.
        """
        self._lease = None

    def __deepcopy__(self, memo) -> "FusedBuffer":
        # copy-on-send support: the copy owns private storage and no lease.
        return FusedBuffer(self.headers, self.data.copy(), lease=None)

    def __len__(self) -> int:
        # Element count across segments: lets the reliable layer's
        # diagnostics and generic length checks treat fused payloads
        # uniformly with plain packed buffers.
        return sum(h.count for h in self.headers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segs = ", ".join(
            f"#{h.schedule_id}:{h.dtype}x{h.count}" for h in self.headers
        )
        return f"FusedBuffer({segs}, nbytes={self.nbytes})"
