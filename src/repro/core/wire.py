"""Wire encoding of schedule index arrays.

Real data parallel runtime schedules do not ship per-element offset lists
when the offsets are regular: Multiblock Parti describes a transfer as a
handful of strided blocks, and that is why exchanging schedule pieces for
regular meshes is cheap (paper Table 5) while Chaos-style pointwise lists
are as large as the data (paper section 5.1, translation tables).

:class:`RunEncoded` captures that: it wraps an integer offset array and
reports, as its transport size, the size of the array's run-length
encoding (maximal arithmetic-progression runs, 24 bytes per run).  The
receiver gets the expanded array directly — the compression only
determines what the cost model charges the wire, which is the quantity
the benchmarks measure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RunEncoded", "count_runs"]


def count_runs(arr: np.ndarray) -> int:
    """Number of maximal arithmetic-progression runs in ``arr`` (greedy).

    Vectorized: a new run starts wherever the step between consecutive
    elements changes.  The greedy split can overcount the optimal run
    partition by at most 2x (a singleton after each break), which is an
    acceptable bound for wire-size accounting.
    """
    arr = np.asarray(arr)
    n = len(arr)
    if n <= 2:
        return min(n, 1)
    d = np.diff(arr)
    breaks = np.count_nonzero(d[1:] != d[:-1])
    return 1 + int(breaks)


class RunEncoded:
    """An int64 array whose transport size is its run-length encoding."""

    __slots__ = ("array", "nruns")

    def __init__(self, array: np.ndarray):
        # Always copy: instances travel through the zero-copy transport and
        # must not alias the (possibly mutated) builder-side arrays.
        self.array = np.array(array, dtype=np.int64, copy=True)
        self.nruns = count_runs(self.array)

    @property
    def nbytes(self) -> int:
        """Run-encoded wire size: (start, step, count) per run."""
        return 16 + 24 * self.nruns

    def __len__(self) -> int:
        return len(self.array)

    def __repr__(self) -> str:
        return f"RunEncoded(n={len(self.array)}, runs={self.nruns})"
