"""Communication-schedule computation (§4.1.3, §5.1).

A :class:`CommSchedule` tells each processor, per peer, *which local
elements to send* and *which local elements to receive into*, with both
sides ordered by the linearization so the k-th packed element lands in the
k-th unpacked slot.  The paper's Figure 8 algorithm is implemented in two
variants:

``ScheduleMethod.COOPERATION``
    Source-group processors dereference the source side of an even chunk
    of the linearization and ship the results to the destination-group
    processors, which dereference the destination side of their chunk,
    form the complete schedule entries, and distribute each processor's
    halves (a dense all-to-all — the paper notes schedule building
    "requires an all-to-all communication ... and a relatively small
    amount of data is sent").

``ScheduleMethod.DUPLICATION``
    Source and destination data descriptors are first made available on
    every processor (free within one program; an explicit exchange across
    programs — impractical when a descriptor is data-sized, like a Chaos
    translation table).  Every processor then computes its own halves
    locally with *no* communication: it enumerates its owned elements on
    each side and dereferences the opposite library for them.  The
    opposite-side dereference happens once for the send role and once for
    the receive role, which is why duplication "must call the Chaos
    dereference function twice" and costs about 2x cooperation when the
    dereference dominates (paper Table 2).

Both produce identical data movement: the same messages, sizes and
element order (verified by the test suite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.linearization import Linearization, check_conformance
from repro.core.policy import ExecutorPolicy, ordered_or_rotated
from repro.core.registry import LibraryAdapter, get_adapter
from repro.core.runs import RunList, group_by_runs
from repro.core.setofregions import SetOfRegions
from repro.core.universe import (
    TAG_DESCRIPTOR,
    TAG_SCHED_PIECES,
    TAG_SCHED_SRCINFO,
    Universe,
)
from repro.core.wire import RunEncoded, count_runs
from repro.vmachine.comm import waitany

__all__ = [
    "ScheduleMethod",
    "CommSchedule",
    "SchedulePeerStats",
    "build_schedule",
    "chunk_ranges",
]


class ScheduleMethod(enum.Enum):
    """How ownership information is assembled into a schedule."""

    COOPERATION = "cooperation"
    DUPLICATION = "duplication"


@dataclass(frozen=True)
class SchedulePeerStats:
    """Per-peer traffic summary of one processor's schedule halves.

    Everything message-level behaviour depends on, without touching any
    data buffer: how many elements travel to/from each peer, how many
    runs encode each half (the wire size of the schedule itself), and the
    payload bytes each peer-message would carry at ``itemsize`` bytes per
    element.  Consumed by the :mod:`~repro.core.plan` compiler's fusion
    decisions, the ``plan-summary`` CLI, and the executors' ``plan:fuse``
    trace events.
    """

    #: elements per destination-group peer (send half; nonempty peers only)
    send_elements: dict[int, int]
    #: elements per source-group peer (receive half; nonempty peers only)
    recv_elements: dict[int, int]
    #: greedy run count of each send half
    send_runs: dict[int, int]
    #: greedy run count of each receive half
    recv_runs: dict[int, int]
    #: payload bytes of the message to each destination peer
    send_bytes: dict[int, int]
    #: payload bytes of the message from each source peer
    recv_bytes: dict[int, int]
    #: element size the byte figures were computed with
    itemsize: int

    @property
    def send_fanout(self) -> int:
        """Number of destination peers this rank actually messages."""
        return len(self.send_elements)

    @property
    def recv_fanout(self) -> int:
        """Number of source peers this rank actually hears from."""
        return len(self.recv_elements)

    @property
    def total_send_elements(self) -> int:
        return sum(self.send_elements.values())

    @property
    def total_recv_elements(self) -> int:
        return sum(self.recv_elements.values())

    @property
    def total_send_bytes(self) -> int:
        return sum(self.send_bytes.values())

    @property
    def total_recv_bytes(self) -> int:
        return sum(self.recv_bytes.values())


@dataclass
class CommSchedule:
    """One processor's halves of a communication schedule.

    ``sends[d]`` — local offsets (into the *source* array's local storage)
    of the elements this processor ships to destination-group rank ``d``,
    in linearization order.  Present only on source-group members.

    ``recvs[s]`` — local offsets (into the *destination* array) receiving
    the elements sent by source-group rank ``s``, in the same order.
    Present only on destination-group members.

    Halves are stored as immutable, run-compressed
    :class:`~repro.core.runs.RunList` sequences — O(runs) memory for
    regular section moves instead of O(elements) — and are auto-compressed
    when dense arrays are supplied.  RunLists are array-like (``len``,
    ``np.asarray``, indexing), and :meth:`dense` recovers a schedule with
    plain ndarray halves for code that needs them.  Because the halves
    are immutable, :meth:`reverse` can share them safely: mutating one
    direction's schedule cannot corrupt the other (attempts raise).

    The schedule is symmetric (§4.3): :meth:`reverse` yields the schedule
    for copying the destination data back onto the source elements.
    """

    src_lib: str
    dst_lib: str
    n_elements: int
    src_size: int
    dst_size: int
    method: ScheduleMethod
    sends: dict[int, RunList] = field(default_factory=dict)
    recvs: dict[int, RunList] = field(default_factory=dict)

    def __post_init__(self):
        # Backward compatibility: dense offset arrays are accepted and
        # auto-compressed into the run representation.
        self.sends = {
            int(k): v if isinstance(v, RunList) else RunList.from_dense(v)
            for k, v in self.sends.items()
        }
        self.recvs = {
            int(k): v if isinstance(v, RunList) else RunList.from_dense(v)
            for k, v in self.recvs.items()
        }

    def reverse(self) -> "CommSchedule":
        """The same mapping with the copy direction flipped.

        The immutable halves are shared, not copied — safe, because
        neither schedule can mutate them.
        """
        return CommSchedule(
            src_lib=self.dst_lib,
            dst_lib=self.src_lib,
            n_elements=self.n_elements,
            src_size=self.dst_size,
            dst_size=self.src_size,
            method=self.method,
            sends={s: offs for s, offs in self.recvs.items()},
            recvs={d: offs for d, offs in self.sends.items()},
        )

    def dense(self) -> "CommSchedule":
        """A copy of this schedule with plain (read-only) ndarray halves.

        For tests, benchmarks and external tooling that want raw offset
        arrays; ``__post_init__`` recompresses, so build the dicts by
        hand to keep them dense.
        """
        out = CommSchedule(
            src_lib=self.src_lib,
            dst_lib=self.dst_lib,
            n_elements=self.n_elements,
            src_size=self.src_size,
            dst_size=self.dst_size,
            method=self.method,
        )
        out.sends = {d: _readonly(v) for d, v in self.sends.items()}
        out.recvs = {s: _readonly(v) for s, v in self.recvs.items()}
        return out

    # -- introspection used by tests and benchmarks -------------------------

    @property
    def send_count(self) -> int:
        return int(sum(len(v) for v in self.sends.values()))

    @property
    def recv_count(self) -> int:
        return int(sum(len(v) for v in self.recvs.values()))

    @property
    def nbytes_memory(self) -> int:
        """This rank's in-memory schedule footprint (both halves)."""
        return int(
            sum(_half_nbytes(v) for v in self.sends.values())
            + sum(_half_nbytes(v) for v in self.recvs.values())
        )

    @property
    def nbytes_dense(self) -> int:
        """What the same halves would occupy as dense int64 offset arrays."""
        return int(8 * (self.send_count + self.recv_count))

    def message_partners(self) -> tuple[list[int], list[int]]:
        """(destinations we send to, sources we receive from), nonempty only."""
        return (
            sorted(d for d, v in self.sends.items() if len(v)),
            sorted(s for s, v in self.recvs.items() if len(v)),
        )

    def stats(self, itemsize: int = 8) -> SchedulePeerStats:
        """Per-peer element/byte/run counts and fan-out of this rank's halves.

        ``itemsize`` sizes the byte figures (default: 8-byte elements, the
        paper's doubles); pass the moved array's true element size for
        exact message payload bytes.  Purely local and cheap — O(peers),
        reading only the run metadata, never a data buffer — so it is safe
        to call inside executors (the ``plan:fuse`` trace events do) and
        from inspection tooling (``python -m repro plan-summary``).
        """
        send_elements = {d: len(v) for d, v in sorted(self.sends.items()) if len(v)}
        recv_elements = {s: len(v) for s, v in sorted(self.recvs.items()) if len(v)}
        return SchedulePeerStats(
            send_elements=send_elements,
            recv_elements=recv_elements,
            send_runs={d: _half_nruns(self.sends[d]) for d in send_elements},
            recv_runs={s: _half_nruns(self.recvs[s]) for s in recv_elements},
            send_bytes={d: n * itemsize for d, n in send_elements.items()},
            recv_bytes={s: n * itemsize for s, n in recv_elements.items()},
            itemsize=itemsize,
        )


def _readonly(offsets) -> np.ndarray:
    arr = offsets.expand() if isinstance(offsets, RunList) else np.array(offsets)
    arr.setflags(write=False)
    return arr


def _half_nbytes(offsets) -> int:
    if isinstance(offsets, RunList):
        return offsets.nbytes_memory
    return int(np.asarray(offsets).nbytes)


def _half_nruns(offsets) -> int:
    return count_runs(offsets)


def chunk_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, n) into ``parts`` near-equal contiguous ranges."""
    if parts < 1:
        raise ValueError("parts must be positive")
    base, extra = divmod(n, parts)
    ranges = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _group_by(keys: np.ndarray, values: np.ndarray) -> dict[int, RunList]:
    """Partition ``values`` by ``keys`` preserving order within each group.

    Groups come back run-compressed: regular sections produce a handful
    of ``(start, step, count)`` runs per peer, so the stored schedule is
    layout-sized, not data-sized.
    """
    return group_by_runs(keys, values)


def build_schedule(
    universe: Universe,
    src_lib: str,
    src_handle,
    src_sor: SetOfRegions | None,
    dst_lib: str,
    dst_handle,
    dst_sor: SetOfRegions | None,
    method: ScheduleMethod = ScheduleMethod.COOPERATION,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
) -> CommSchedule:
    """Collectively compute a communication schedule.

    Every processor of the universe (both groups) must call this with the
    same arguments for its role:

    - source-group members pass their ``src_handle``/``src_sor``;
    - destination-group members pass ``dst_handle``/``dst_sor``;
    - in a single program every processor passes all four;
    - across two programs, the opposite side's handle/sor may be ``None``
      (cooperation) — duplication needs both SetOfRegions on both sides,
      since the mapping is recomputed locally everywhere.

    ``policy`` orders the schedule-build exchanges themselves:
    ``ExecutorPolicy.OVERLAP`` staggers the phase-1/phase-3 injections and
    completes receives in arrival order (the resulting *schedule* is
    identical either way — only the build's logical clock changes).
    Duplication builds no exchanges beyond a rank-0 descriptor swap, so
    ``policy`` is a no-op there.
    """
    policy = ExecutorPolicy.coerce(policy)
    proc = universe.process
    with proc.span("schedule:build"):
        proc.charge_startup()
        src_adapter = get_adapter(src_lib)
        dst_adapter = get_adapter(dst_lib)

        # The handles' distributions must span exactly their universe
        # group — a mismatch would produce schedule entries addressing
        # ranks that do not exist (or silently starve some).
        if src_handle is not None and universe.my_src_rank is not None:
            nprocs = src_adapter.dist_of(
                src_adapter.resolve_handle(src_handle)
            ).nprocs
            if nprocs != universe.src_size:
                raise ValueError(
                    f"source structure is distributed over {nprocs} "
                    f"processors but the source group has {universe.src_size}"
                )
        if dst_handle is not None and universe.my_dst_rank is not None:
            nprocs = dst_adapter.dist_of(
                dst_adapter.resolve_handle(dst_handle)
            ).nprocs
            if nprocs != universe.dst_size:
                raise ValueError(
                    f"destination structure is distributed over {nprocs} "
                    f"processors but the destination group has "
                    f"{universe.dst_size}"
                )

        n = _conformance_size(universe, src_handle, src_sor, dst_handle,
                              dst_sor, src_adapter, dst_adapter)

        if method is ScheduleMethod.COOPERATION:
            sends, recvs = _build_cooperation(
                universe, src_adapter, src_handle, src_sor,
                dst_adapter, dst_handle, dst_sor, n, policy,
            )
        elif method is ScheduleMethod.DUPLICATION:
            sends, recvs = _build_duplication(
                universe, src_adapter, src_handle, src_sor,
                dst_adapter, dst_handle, dst_sor, n,
            )
        else:  # pragma: no cover - enum exhausted
            raise ValueError(f"unknown method {method}")

        return CommSchedule(
            src_lib=src_lib,
            dst_lib=dst_lib,
            n_elements=n,
            src_size=universe.src_size,
            dst_size=universe.dst_size,
            method=method,
            sends=sends,
            recvs=recvs,
        )


def _conformance_size(
    universe: Universe,
    src_handle, src_sor, dst_handle, dst_sor,
    src_adapter: LibraryAdapter, dst_adapter: LibraryAdapter,
) -> int:
    """Element count, validated across both sides (§4.1.2's one constraint)."""
    if universe.single_program:
        src_linz = Linearization(src_sor, src_adapter.shape_of(src_handle))
        dst_linz = Linearization(dst_sor, dst_adapter.shape_of(dst_handle))
        return check_conformance(src_linz, dst_linz)
    # Two programs: rank 0 of each side exchanges its count.
    my_n = (src_sor or dst_sor).size
    if universe.my_src_rank == 0:
        universe.send_to_dst(0, my_n, TAG_SCHED_SRCINFO)
        other = universe.recv_from_dst(0, TAG_SCHED_SRCINFO)
    elif universe.my_dst_rank == 0:
        universe.send_to_src(0, my_n, TAG_SCHED_SRCINFO)
        other = universe.recv_from_src(0, TAG_SCHED_SRCINFO)
    else:
        other = my_n
    if universe.my_src_rank == 0 or universe.my_dst_rank == 0:
        if other != my_n:
            raise ValueError(
                f"source SetOfRegions has a different element count "
                f"({my_n} here vs {other} on the peer program)"
            )
    return my_n


# ---------------------------------------------------------------------------
# cooperation
# ---------------------------------------------------------------------------


def _overlaps(lo: int, hi: int, chunks: list[tuple[int, int]]) -> list[int]:
    """Indices of chunks intersecting [lo, hi) — binary search, O(log P + k).

    ``chunk_ranges`` yields sorted, contiguous chunks, so both the start
    and end boundaries are non-decreasing:  chunk ``i`` intersects iff
    ``ends[i] > lo`` (first such index by ``searchsorted(..., 'right')``)
    and ``starts[i] < hi`` (one past the last by ``searchsorted(...,
    'left')``).  Zero-width chunks inside the window are filtered out,
    matching the old linear scan's ``max(lo, clo) < min(hi, chi)`` test.
    Output stays in ascending chunk order.
    """
    if hi <= lo or not chunks:
        return []
    starts = np.fromiter((c[0] for c in chunks), dtype=np.int64, count=len(chunks))
    ends = np.fromiter((c[1] for c in chunks), dtype=np.int64, count=len(chunks))
    first = int(np.searchsorted(ends, lo, side="right"))
    last = int(np.searchsorted(starts, hi, side="left"))
    return [i for i in range(first, last) if chunks[i][0] < chunks[i][1]]


def _build_cooperation(
    universe, src_adapter, src_handle, src_sor,
    dst_adapter, dst_handle, dst_sor, n,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
):
    src_chunks = chunk_ranges(n, universe.src_size)
    dst_chunks = chunk_ranges(n, universe.dst_size)
    stash: dict[int, tuple] = {}

    # Phase 1: source side dereferences its linearization chunk and ships
    # the (owner, local offset) info to the destination chunk owners.
    # Under OVERLAP the targets are visited in rotated order (staggered
    # injection); the pieces carry their linearization offset ``olo``, so
    # send order never affects the schedule content.
    if universe.my_src_rank is not None:
        lo, hi = src_chunks[universe.my_src_rank]
        sranks, soffs = src_adapter.deref_range(src_handle, src_sor, lo, hi)
        targets = ordered_or_rotated(
            _overlaps(lo, hi, dst_chunks),
            universe.my_src_rank, universe.dst_size, policy,
        )
        for d in targets:
            dlo, dhi = dst_chunks[d]
            olo, ohi = max(lo, dlo), min(hi, dhi)
            piece = (
                olo,
                RunEncoded(sranks[olo - lo : ohi - lo]),
                RunEncoded(soffs[olo - lo : ohi - lo]),
            )
            if universe.same_proc_dst(d):
                stash[universe.my_src_rank] = piece
            else:
                universe.send_to_dst(d, piece, TAG_SCHED_SRCINFO)

    # Phase 2: destination side dereferences its chunk, merges in the
    # source info, and forms complete schedule entries for its chunk.
    # Placement is by each piece's ``olo``, so completion order is free:
    # under OVERLAP the remote pieces are received in *arrival* order via
    # wait-any, local stash first.
    src_pieces: list | None = None
    dst_pieces: list | None = None
    if universe.my_dst_rank is not None:
        dlo, dhi = dst_chunks[universe.my_dst_rank]
        m = dhi - dlo
        sranks = np.empty(m, dtype=np.int64)
        soffs = np.empty(m, dtype=np.int64)

        def _place(piece):
            olo, r, o = piece
            sranks[olo - dlo : olo - dlo + len(r)] = r.array
            soffs[olo - dlo : olo - dlo + len(o)] = o.array

        sources = _overlaps(dlo, dhi, src_chunks)
        remote = [s for s in sources if not universe.same_proc_src(s)]
        if policy is ExecutorPolicy.OVERLAP and len(remote) > 1:
            for s in sources:
                if universe.same_proc_src(s):
                    _place(stash.pop(s))
            requests = [
                universe.irecv_from_src(s, TAG_SCHED_SRCINFO) for s in remote
            ]
            for _ in range(len(requests)):
                _, piece = waitany(requests)
                _place(piece)
        else:
            for s in sources:
                if universe.same_proc_src(s):
                    _place(stash.pop(s))
                else:
                    _place(universe.recv_from_src(s, TAG_SCHED_SRCINFO))
        dranks, doffs = dst_adapter.deref_range(dst_handle, dst_sor, dlo, dhi)

        # Halves for every source-group processor: (dranks, soffs) of the
        # entries it owns on the source side, in linearization order.
        by_s_dranks = _group_by(sranks, dranks)
        by_s_soffs = _group_by(sranks, soffs)
        src_pieces = [
            (
                RunEncoded(by_s_dranks.get(s, _EMPTY)),
                RunEncoded(by_s_soffs.get(s, _EMPTY)),
            )
            for s in range(universe.src_size)
        ]
        # Halves for every destination-group processor: (sranks, doffs).
        by_d_sranks = _group_by(dranks, sranks)
        by_d_doffs = _group_by(dranks, doffs)
        dst_pieces = [
            (
                RunEncoded(by_d_sranks.get(d, _EMPTY)),
                RunEncoded(by_d_doffs.get(d, _EMPTY)),
            )
            for d in range(universe.dst_size)
        ]

    # Phase 3: dense distribution of the halves, then local assembly.
    my_src_half, my_dst_half = _distribute_pieces(
        universe, src_pieces, dst_pieces, policy
    )

    sends: dict[int, np.ndarray] = {}
    recvs: dict[int, np.ndarray] = {}
    if universe.my_src_rank is not None:
        # Pieces arrive in destination-chunk order == linearization order.
        dprocs = np.concatenate([p[0].array for p in my_src_half]) if my_src_half else _EMPTY
        soffs_all = np.concatenate([p[1].array for p in my_src_half]) if my_src_half else _EMPTY
        sends = _group_by(dprocs, soffs_all)
    if universe.my_dst_rank is not None:
        sprocs = np.concatenate([p[0].array for p in my_dst_half]) if my_dst_half else _EMPTY
        doffs_all = np.concatenate([p[1].array for p in my_dst_half]) if my_dst_half else _EMPTY
        recvs = _group_by(sprocs, doffs_all)
    return sends, recvs


_EMPTY = np.zeros(0, dtype=np.int64)


def _distribute_pieces(
    universe, src_pieces, dst_pieces,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
):
    """Dense all-to-all of schedule halves from destination-chunk owners.

    Every destination-group processor addresses one message to every
    source-group processor and one to every destination-group processor
    (merged when the two coincide).  Under ``ORDERED`` receivers collect
    one piece from every destination-chunk owner in rank order; under
    ``OVERLAP`` the sends are rotated and the pieces are completed in
    arrival order via wait-any, slotted into their sender's index — the
    assembled halves are identical either way.
    """
    overlap = policy is ExecutorPolicy.OVERLAP
    if universe.single_program:
        comm_size = universe.dst_size
        me = universe.my_dst_rank
        merged = [
            (src_pieces[p], dst_pieces[p]) for p in range(comm_size)
        ]
        mine = merged[me]
        for p in ordered_or_rotated(
            [p for p in range(comm_size) if p != me], me, comm_size, policy
        ):
            universe.send_to_dst(p, merged[p], TAG_SCHED_PIECES)
        others = [q for q in range(comm_size) if q != me]
        pieces: list = [None] * comm_size
        pieces[me] = mine
        if overlap and len(others) > 1:
            requests = [
                universe.irecv_from_dst(q, TAG_SCHED_PIECES) for q in others
            ]
            for _ in range(len(requests)):
                idx, piece = waitany(requests)
                pieces[others[idx]] = piece
        else:
            for q in others:
                pieces[q] = universe.recv_from_dst(q, TAG_SCHED_PIECES)
        my_src_half = [p[0] for p in pieces]
        my_dst_half = [p[1] for p in pieces]
        return my_src_half, my_dst_half

    # Two programs: only destination-group members hold pieces.
    if universe.my_dst_rank is not None:
        me = universe.my_dst_rank
        for s in ordered_or_rotated(
            list(range(universe.src_size)), me, universe.src_size, policy
        ):
            universe.send_to_src(s, src_pieces[s], TAG_SCHED_PIECES)
        for d in ordered_or_rotated(
            [d for d in range(universe.dst_size) if d != me],
            me, universe.dst_size, policy,
        ):
            universe.send_to_dst(d, dst_pieces[d], TAG_SCHED_PIECES)
        others = [q for q in range(universe.dst_size) if q != me]
        my_dst_half = [None] * universe.dst_size
        my_dst_half[me] = dst_pieces[me]
        if overlap and len(others) > 1:
            requests = [
                universe.irecv_from_dst(q, TAG_SCHED_PIECES) for q in others
            ]
            for _ in range(len(requests)):
                idx, piece = waitany(requests)
                my_dst_half[others[idx]] = piece
        else:
            for q in others:
                my_dst_half[q] = universe.recv_from_dst(q, TAG_SCHED_PIECES)
        return None, my_dst_half
    # Pure source-group member.
    owners = list(range(universe.dst_size))
    if overlap and len(owners) > 1:
        my_src_half = [None] * universe.dst_size
        requests = [
            universe.irecv_from_dst(q, TAG_SCHED_PIECES) for q in owners
        ]
        for _ in range(len(requests)):
            idx, piece = waitany(requests)
            my_src_half[owners[idx]] = piece
        return my_src_half, None
    my_src_half = [
        universe.recv_from_dst(q, TAG_SCHED_PIECES)
        for q in owners
    ]
    return my_src_half, None


# ---------------------------------------------------------------------------
# duplication
# ---------------------------------------------------------------------------


def _build_duplication(
    universe, src_adapter, src_handle, src_sor,
    dst_adapter, dst_handle, dst_sor, n,
):
    # Make both descriptors available everywhere.  Inside one program both
    # arrays are already at hand — no communication (paper Table 5
    # discussion).  Across programs, rank 0 of each side exports its data
    # descriptor to the peer, which broadcasts it internally; the
    # transport is charged the descriptor's true size (huge for
    # translation tables — the paper's practicality caveat).
    if not universe.single_program:
        src_handle, dst_handle = _exchange_descriptors(
            universe, src_adapter, src_handle, dst_adapter, dst_handle
        )
        if src_sor is None or dst_sor is None:
            raise ValueError(
                "the duplication method needs both SetOfRegions on every "
                "processor (the mapping is recomputed locally)"
            )
    src_local = src_adapter.resolve_handle(src_handle)
    dst_local = dst_adapter.resolve_handle(dst_handle)

    sends: dict[int, np.ndarray] = {}
    recvs: dict[int, np.ndarray] = {}
    if universe.my_src_rank is not None:
        # Send role: my source-side elements; dereference the destination
        # library to learn where each goes.
        lin_mine, soffs_mine = src_adapter.local_elements(
            src_local, src_sor, universe.my_src_rank
        )
        dranks, _ = dst_adapter.deref_lin(dst_local, dst_sor, lin_mine)
        sends = _group_by(dranks, soffs_mine)
    if universe.my_dst_rank is not None:
        # Receive role: my destination-side elements; dereference the
        # source library to learn who sends each.  (The second dereference
        # of the expensive side — duplication's 2x.)
        lin_mine, doffs_mine = dst_adapter.local_elements(
            dst_local, dst_sor, universe.my_dst_rank
        )
        sranks, _ = src_adapter.deref_lin(src_local, src_sor, lin_mine)
        recvs = _group_by(sranks, doffs_mine)
    return sends, recvs


def _exchange_descriptors(universe, src_adapter, src_handle, dst_adapter, dst_handle):
    """Cross-program descriptor exchange for the duplication method."""
    if universe.my_src_rank is not None:
        comm = universe.comm  # TwoProgramUniverse attribute
        if universe.my_src_rank == 0:
            universe.send_to_dst(0, src_adapter.export_handle(src_handle), TAG_DESCRIPTOR)
            remote = universe.recv_from_dst(0, TAG_DESCRIPTOR)
        else:
            remote = None
        remote = comm.bcast(remote, root=0)
        return src_handle, remote
    comm = universe.comm
    if universe.my_dst_rank == 0:
        remote = universe.recv_from_src(0, TAG_DESCRIPTOR)
        universe.send_to_src(0, dst_adapter.export_handle(dst_handle), TAG_DESCRIPTOR)
    else:
        remote = None
    remote = comm.bcast(remote, root=0)
    return remote, dst_handle
