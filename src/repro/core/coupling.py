"""Coupling helpers for separate-program Meta-Chaos (§5.2, §5.4).

Convenience layer over :class:`~repro.core.universe.TwoProgramUniverse`:
build the universe from a :class:`~repro.vmachine.program.ProgramContext`,
and drive repeated bidirectional exchanges with one symmetric schedule —
"the communication schedule is also symmetric ... the only change required
would be to switch the calls to MC_DataMoveSend and MC_DataMoveRecv
between the programs" (§4.3).
"""

from __future__ import annotations

from typing import Any

from repro.core.datamove import data_move_recv, data_move_send
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import CommSchedule
from repro.core.universe import TwoProgramUniverse
from repro.vmachine.program import ProgramContext

__all__ = ["coupled_universe", "CoupledExchange"]


def coupled_universe(
    ctx: ProgramContext, peer: str, role: str
) -> TwoProgramUniverse:
    """Universe for a copy between this program and program ``peer``.

    ``role`` is this program's part: ``"src"`` if it owns the source data
    structure of the schedule about to be built, ``"dst"`` otherwise.
    """
    return TwoProgramUniverse(ctx.comm, ctx.peer(peer), role)


class CoupledExchange:
    """A reusable bidirectional exchange over one symmetric schedule.

    Constructed on both programs with the same schedule (each side holds
    its own halves).  ``push`` moves data in the schedule's forward
    direction, ``pull`` in reverse; each side calls the method with its
    own local array and the object works out whether to send or receive.
    """

    def __init__(
        self,
        universe: TwoProgramUniverse,
        schedule: CommSchedule,
        policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    ):
        self.universe = universe
        self.schedule = schedule
        #: executor policy applied to every push/pull on this exchange
        self.policy = ExecutorPolicy.coerce(policy)

    @property
    def _is_src(self) -> bool:
        return self.universe.my_src_rank is not None

    def push(self, local_array: Any) -> None:
        """Forward copy: source program sends, destination receives."""
        if self._is_src:
            data_move_send(self.schedule, local_array, self.universe,
                           policy=self.policy)
        else:
            data_move_recv(self.schedule, local_array, self.universe,
                           policy=self.policy)

    def pull(self, local_array: Any) -> None:
        """Reverse copy along the same (symmetric) schedule."""
        rev = self.schedule.reverse()
        runiverse = self.universe.reversed()
        if self._is_src:
            # Forward-source becomes reverse-destination.
            data_move_recv(rev, local_array, runiverse, policy=self.policy)
        else:
            data_move_send(rev, local_array, runiverse, policy=self.policy)
