"""Coupling helpers for separate-program Meta-Chaos (§5.2, §5.4).

Convenience layer over :class:`~repro.core.universe.TwoProgramUniverse`:
build the universe from a :class:`~repro.vmachine.program.ProgramContext`,
and drive repeated bidirectional exchanges with one symmetric schedule —
"the communication schedule is also symmetric ... the only change required
would be to switch the calls to MC_DataMoveSend and MC_DataMoveRecv
between the programs" (§4.3).  Applications exchanging several fields per
timestep use :meth:`CoupledExchange.push_many` / :meth:`CoupledExchange.
pull_many`, which fuse the k per-field messages of each processor pair
into one via a cached :class:`~repro.core.plan.MovePlan`.

Graceful peer-failure degradation: a :class:`CoupledExchange` constructed
with ``deadline_s`` bounds every push/pull (and the reliable layer's
fence) by that wall-clock deadline.  If the peer program crashes — or
simply stops answering — the exchange raises
:class:`~repro.vmachine.faults.PeerLostError` *naming the peer program*
within the deadline instead of hanging, upgrading the transport-level
:class:`~repro.vmachine.faults.RankLostError` / ``TimeoutError`` with the
coupling-level context (which peer, which direction, undelivered
envelopes, last-ack state).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.datamove import data_move_recv, data_move_send
from repro.core.plan import MovePlan, compile_plan, plan_move_recv, plan_move_send
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import CommSchedule
from repro.core.universe import TwoProgramUniverse
from repro.vmachine.faults import PeerLostError, RankLostError
from repro.vmachine.program import ProgramContext
from repro.vmachine.reliability import Reliability, ReliabilityConfig

__all__ = ["coupled_universe", "CoupledExchange"]


def coupled_universe(
    ctx: ProgramContext, peer: str, role: str
) -> TwoProgramUniverse:
    """Universe for a copy between this program and program ``peer``.

    ``role`` is this program's part: ``"src"`` if it owns the source data
    structure of the schedule about to be built, ``"dst"`` otherwise.
    The peer program's name is stashed on the universe so failure
    reports can say *which program* was lost, not just which rank.
    """
    universe = TwoProgramUniverse(ctx.comm, ctx.peer(peer), role)
    universe.peer_program = peer
    return universe


class CoupledExchange:
    """A reusable bidirectional exchange over one symmetric schedule.

    Constructed on both programs with the same schedule (each side holds
    its own halves).  ``push`` moves data in the schedule's forward
    direction, ``pull`` in reverse; each side calls the method with its
    own local array and the object works out whether to send or receive.

    Parameters
    ----------
    deadline_s:
        Wall-clock bound for each push/pull.  Receives retry with
        exponential backoff within the budget; when it expires (or the
        peer is detected dead) the exchange raises
        :class:`~repro.vmachine.faults.PeerLostError` naming the peer
        program.  ``None`` (default) uses the per-process receive
        timeout.
    reliability:
        Opt-in reliable delivery for the exchanged data: ``True`` (default
        config), a :class:`~repro.vmachine.reliability.ReliabilityConfig`,
        or an existing :class:`~repro.vmachine.reliability.Reliability`
        instance to share.  Attached to the universe, so both directions
        of the exchange use one protocol instance.
    """

    def __init__(
        self,
        universe: TwoProgramUniverse,
        schedule: CommSchedule,
        policy: ExecutorPolicy | str = ExecutorPolicy.ORDERED,
        deadline_s: float | None = None,
        reliability: Reliability | ReliabilityConfig | bool | None = None,
    ):
        self.universe = universe
        self.schedule = schedule
        #: executor policy applied to every push/pull on this exchange.
        #: ``"auto"`` resolves it here, once, from this rank's half of the
        #: schedule (:func:`repro.autotune.choose_policy`): OVERLAP when
        #: this rank completes receives from more than one peer, ORDERED
        #: otherwise.  Per-rank divergence is safe — policy never affects
        #: placement, only local ordering.
        if isinstance(policy, str) and policy.lower() == "auto":
            from repro.autotune.auto import choose_policy

            self.policy = choose_policy(schedule, universe.my_src_rank)
        else:
            self.policy = ExecutorPolicy.coerce(policy)
        #: wall-clock budget per exchange before declaring the peer lost
        self.deadline_s = deadline_s
        if isinstance(reliability, Reliability):
            universe.reliability = reliability
        elif isinstance(reliability, ReliabilityConfig):
            universe.enable_reliability(reliability)
        elif reliability:
            universe.enable_reliability()
        #: lazily compiled fused plans, keyed by (k, direction) — the
        #: common case of k same-shaped fields exchanged per timestep
        self._plans: dict[tuple[int, bool], MovePlan] = {}

    @property
    def _is_src(self) -> bool:
        return self.universe.my_src_rank is not None

    @property
    def peer_name(self) -> str | None:
        """Name of the peer program (when built via :func:`coupled_universe`)."""
        return self.universe.peer_program

    # -- failure translation -----------------------------------------------

    def _peer_lost(self, exc: BaseException, direction: str) -> PeerLostError:
        proc = self.universe.process
        if isinstance(exc, RankLostError):
            return PeerLostError(
                exc.rank,
                exc.lost_rank,
                f"{direction}: {exc.reason}",
                peer_program=self.peer_name,
                pending=exc.pending,
                last_ack=exc.last_ack,
            )
        rel = self.universe.reliability
        return PeerLostError(
            proc.rank,
            -1,
            f"{direction} exceeded the {self.deadline_s}s exchange deadline: "
            f"{exc}",
            peer_program=self.peer_name,
            pending=proc.mailbox.pending_summary(),
            last_ack=rel.describe() if rel is not None else None,
        )

    def _run(self, direction: str, fn, *args: Any, **kwargs: Any) -> None:
        try:
            fn(*args, **kwargs)
        except PeerLostError:
            raise
        except (RankLostError, TimeoutError) as exc:
            raise self._peer_lost(exc, direction) from exc

    # -- the exchange itself -----------------------------------------------

    def push(self, local_array: Any, donate: bool = False) -> None:
        """Forward copy: source program sends, destination receives.

        ``donate`` applies on the receiving side only: an eligible
        message (full-coverage unpack, exact dtype) is adopted as the
        local array's storage instead of scattered through.

        Raises :class:`~repro.vmachine.faults.PeerLostError` within the
        deadline when the peer program has failed.
        """
        if self._is_src:
            self._run(
                "push (send half)", data_move_send,
                self.schedule, local_array, self.universe,
                policy=self.policy, timeout=self.deadline_s,
            )
        else:
            self._run(
                "push (receive half)", data_move_recv,
                self.schedule, local_array, self.universe,
                policy=self.policy, timeout=self.deadline_s, donate=donate,
            )

    def pull(self, local_array: Any, donate: bool = False) -> None:
        """Reverse copy along the same (symmetric) schedule."""
        rev = self.schedule.reverse()
        runiverse = self.universe.reversed()
        if self._is_src:
            # Forward-source becomes reverse-destination.
            self._run(
                "pull (receive half)", data_move_recv,
                rev, local_array, runiverse,
                policy=self.policy, timeout=self.deadline_s, donate=donate,
            )
        else:
            self._run(
                "pull (send half)", data_move_send,
                rev, local_array, runiverse,
                policy=self.policy, timeout=self.deadline_s,
            )

    # -- fused multi-field exchanges -----------------------------------------

    def _plan_for(self, k: int, reverse: bool) -> MovePlan:
        """The cached fused plan for ``k`` fields in one direction.

        Coupled timestep loops exchange the *same* k fields every
        iteration (paper §5.1: multiple physical quantities over one mesh
        mapping), so the plan — k copies of the exchange schedule fused
        into one message per pair — is compiled once per (k, direction)
        and reused; compilation is local and cheap, but the point is the
        stable plan identity for the pooled staging buffers behind it.
        """
        key = (k, reverse)
        plan = self._plans.get(key)
        if plan is None:
            sched = self.schedule.reverse() if reverse else self.schedule
            plan = compile_plan([sched] * k)
            self._plans[key] = plan
        return plan

    def push_many(self, local_arrays: Sequence[Any], donate: bool = False) -> None:
        """Forward copy of several fields in one fused message per pair.

        Equivalent to ``for a in local_arrays: push(a)`` — identical
        destination bytes — but each processor pair exchanges one fused
        message instead of ``len(local_arrays)``, saving the per-message
        latency k-1 times per pair and per timestep.  Both programs must
        pass the same number of arrays, in the same order.
        """
        plan = self._plan_for(len(local_arrays), reverse=False)
        if self._is_src:
            self._run(
                "push_many (send half)", plan_move_send,
                plan, local_arrays, self.universe,
                policy=self.policy, timeout=self.deadline_s,
            )
        else:
            self._run(
                "push_many (receive half)", plan_move_recv,
                plan, local_arrays, self.universe,
                policy=self.policy, timeout=self.deadline_s, donate=donate,
            )

    def pull_many(self, local_arrays: Sequence[Any], donate: bool = False) -> None:
        """Reverse fused copy of several fields (symmetric schedule)."""
        plan = self._plan_for(len(local_arrays), reverse=True)
        runiverse = self.universe.reversed()
        if self._is_src:
            self._run(
                "pull_many (receive half)", plan_move_recv,
                plan, local_arrays, runiverse,
                policy=self.policy, timeout=self.deadline_s, donate=donate,
            )
        else:
            self._run(
                "pull_many (send half)", plan_move_send,
                plan, local_arrays, runiverse,
                policy=self.policy, timeout=self.deadline_s,
            )
