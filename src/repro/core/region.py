"""Regions: compact global descriptions of groups of elements (§4.1.1).

"A Region is an instantiation of a Region type, which must be defined by
each data parallel library."  Two Region types cover the libraries in this
reproduction:

- :class:`SectionRegion` — a regularly strided array section; the Region
  type of HPF and Multiblock Parti.  Its linearization is row-major order
  over the section.
- :class:`IndexRegion` — an explicit ordered list of global (flat)
  indices; the Region type of Chaos and the pC++ collection.  Its
  linearization is the listed order.

Every Region answers two vectorized questions needed by the schedule
builder:

- ``size`` — how many elements it selects;
- ``lin_to_global(positions, shape)`` — the flat global index of each
  linearization position.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.distrib.section import Section

__all__ = ["Region", "SectionRegion", "IndexRegion", "MaskRegion"]


class Region(abc.ABC):
    """One compact group of elements of a distributed data structure."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of elements selected by the region."""

    @abc.abstractmethod
    def lin_to_global(
        self, positions: np.ndarray, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Flat global indices of the given linearization positions.

        ``shape`` is the global shape of the data structure the region
        belongs to (needed to flatten multi-dimensional indices).
        """

    @abc.abstractmethod
    def global_flat(self, shape: tuple[int, ...]) -> np.ndarray:
        """All selected flat global indices, in linearization order."""

    @abc.abstractmethod
    def nbytes_descriptor(self) -> int:
        """Size of the region's compact description when shipped."""


class SectionRegion(Region):
    """A regular array section ``[l1:u1:s1, l2:u2:s2, ...]``.

    Built either from an explicit :class:`~repro.distrib.section.Section`
    or with :meth:`from_bounds` mirroring the paper's
    ``CreateRegion_HPF(ndims, lower, upper[, stride])`` constructor.

    ``order`` selects the library's linearization convention for the
    section's elements: ``"C"`` (row-major, the default — C-style
    libraries like pC++) or ``"F"`` (column-major — Fortran libraries
    like HPF, whose arrays enumerate the first dimension fastest).  Two
    regions of equal shape but different orders define *different*
    element correspondences, exactly as two differently written libraries
    would.
    """

    def __init__(self, section: Section, order: str = "C"):
        if order not in ("C", "F"):
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        self.section = section
        self.order = order

    @classmethod
    def from_bounds(
        cls,
        lower: tuple[int, ...],
        upper: tuple[int, ...],
        stride: tuple[int, ...] | None = None,
        order: str = "C",
    ) -> "SectionRegion":
        """Inclusive-bounds constructor (``upper`` is the last index taken),
        matching the Fortran-flavoured interface in the paper's Figure 9."""
        if stride is None:
            stride = tuple(1 for _ in lower)
        stops = tuple(u + 1 for u in upper)
        return cls(Section(tuple(lower), stops, tuple(stride)), order)

    @property
    def size(self) -> int:
        return self.section.size

    def lin_to_global(
        self, positions: np.ndarray, shape: tuple[int, ...]
    ) -> np.ndarray:
        gcoords = self.section.lin_to_multi(
            np.asarray(positions, dtype=np.int64), order=self.order
        )
        return np.ravel_multi_index(gcoords, shape).astype(np.int64)

    def global_flat(self, shape: tuple[int, ...]) -> np.ndarray:
        return self.section.global_flat(shape, order=self.order)

    def nbytes_descriptor(self) -> int:
        return 24 * self.section.ndim

    def __repr__(self) -> str:
        suffix = "" if self.order == "C" else ", order='F'"
        return f"SectionRegion({self.section}{suffix})"


class MaskRegion(Region):
    """A boolean mask over the global index space (HPF ``WHERE`` style).

    Selects every element whose mask entry is True; the linearization is
    the C-order (or ``"F"``-order) enumeration of the selected positions.
    Internally stored as the equivalent flat index list, so adapters see
    it through the same vectorized interface as :class:`IndexRegion`, but
    its compact description is the mask itself (1 bit per global element
    — between a section's O(ndim) and an index list's O(n) words).
    """

    def __init__(self, mask: np.ndarray, order: str = "C"):
        mask = np.asarray(mask, dtype=bool)
        if order not in ("C", "F"):
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        self.mask_shape = mask.shape
        self.order = order
        # Flat (C-storage) indices of selected elements, enumerated in the
        # requested order.
        flat = np.flatnonzero(mask.ravel(order="C"))
        if order == "F":
            coords = np.unravel_index(flat, mask.shape)
            forder = np.ravel_multi_index(
                coords, mask.shape, order="F"
            ).argsort(kind="stable")
            flat = flat[forder]
        self.indices = flat.astype(np.int64)

    @property
    def size(self) -> int:
        return len(self.indices)

    def lin_to_global(
        self, positions: np.ndarray, shape: tuple[int, ...]
    ) -> np.ndarray:
        if tuple(shape) != tuple(self.mask_shape):
            raise ValueError(
                f"mask shape {self.mask_shape} does not match the data "
                f"structure shape {tuple(shape)}"
            )
        return self.indices[np.asarray(positions, dtype=np.int64)]

    def global_flat(self, shape: tuple[int, ...]) -> np.ndarray:
        if tuple(shape) != tuple(self.mask_shape):
            raise ValueError("mask shape mismatch")
        return self.indices.copy()

    def nbytes_descriptor(self) -> int:
        # One bit per global element.
        total = 1
        for n in self.mask_shape:
            total *= n
        return max(1, total // 8)

    def __repr__(self) -> str:
        return f"MaskRegion(shape={self.mask_shape}, n={self.size})"


class IndexRegion(Region):
    """An explicit ordered set of global flat indices.

    The order of ``indices`` *is* the linearization — distinct orders are
    distinct regions (this is how a Chaos program expresses an arbitrary
    pointwise mapping).
    """

    def __init__(self, indices: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("IndexRegion takes a 1-D index list")
        if len(indices) and indices.min() < 0:
            raise ValueError("negative global index")
        self.indices = indices

    @property
    def size(self) -> int:
        return len(self.indices)

    def lin_to_global(
        self, positions: np.ndarray, shape: tuple[int, ...]
    ) -> np.ndarray:
        return self.indices[np.asarray(positions, dtype=np.int64)]

    def global_flat(self, shape: tuple[int, ...]) -> np.ndarray:
        return self.indices.copy()

    def nbytes_descriptor(self) -> int:
        # The index list itself must travel with the region description.
        return int(self.indices.nbytes)

    def __repr__(self) -> str:
        return f"IndexRegion(n={self.size})"
