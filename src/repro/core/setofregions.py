"""SetOfRegions: ordered groups of Regions (§4.1.1-4.1.2).

"Regions are gathered into an ordered group called a SetOfRegions ...
the linearization of a SetOfRegions is the linearization of the first
Region in the set followed by the linearization of the remaining
Regions."
"""

from __future__ import annotations

import numpy as np

from repro.core.region import Region

__all__ = ["SetOfRegions"]


class SetOfRegions:
    """An ordered collection of Regions with a concatenated linearization."""

    def __init__(self, regions: list[Region] | None = None):
        self.regions: list[Region] = list(regions) if regions else []
        self._starts: np.ndarray | None = None

    def add(self, region: Region) -> "SetOfRegions":
        """Append a region (the paper's ``MC_AddRegion2Set``)."""
        if not isinstance(region, Region):
            raise TypeError(f"expected a Region, got {type(region).__name__}")
        self.regions.append(region)
        self._starts = None
        return self

    @property
    def size(self) -> int:
        """Total element count across all regions."""
        return sum(r.size for r in self.regions)

    @property
    def starts(self) -> np.ndarray:
        """Linearization start offset of each region (plus a final sentinel
        equal to the total size)."""
        if self._starts is None or len(self._starts) != len(self.regions) + 1:
            sizes = [r.size for r in self.regions]
            self._starts = np.concatenate(([0], np.cumsum(sizes, dtype=np.int64)))
        return self._starts

    def lin_to_global(
        self, positions: np.ndarray, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Flat global index of each linearization position (vectorized).

        Positions are split by region (searchsorted over the region start
        offsets) and each slice is resolved by its region.  The output is
        ordered like ``positions``.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) == 0:
            return np.zeros(0, dtype=np.int64)
        total = self.size
        if positions.min(initial=0) < 0 or positions.max(initial=0) >= total:
            raise IndexError("linearization position out of range")
        starts = self.starts
        region_ids = np.searchsorted(starts, positions, side="right") - 1
        out = np.empty(len(positions), dtype=np.int64)
        for rid in np.unique(region_ids):
            mask = region_ids == rid
            local = positions[mask] - starts[rid]
            out[mask] = self.regions[rid].lin_to_global(local, shape)
        return out

    def global_flat(self, shape: tuple[int, ...]) -> np.ndarray:
        """All selected flat global indices in linearization order."""
        if not self.regions:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([r.global_flat(shape) for r in self.regions])

    def nbytes_descriptor(self) -> int:
        """Shipping size of the set's compact description."""
        return 16 + sum(r.nbytes_descriptor() for r in self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def __repr__(self) -> str:
        return f"SetOfRegions({self.regions!r})"
