"""Moving data with a communication schedule (§4.1.4).

Each source processor packs, per destination processor, all elements bound
there into one contiguous buffer — "messages are aggregated, so that at
most one message is sent between each source and each destination
processor" — and intra-processor transfers (single-program case) are
copied directly between the two arrays' storage with no intermediate
buffer.

Two executor policies order the message traffic
(:class:`~repro.core.policy.ExecutorPolicy`):

``ORDERED`` (default)
    Sends and blocking receives are issued in ascending group-rank order —
    the historical, paper-faithful executor.  Logical clocks are
    byte-for-byte reproducible against all published tables.

``OVERLAP``
    Latency-hiding: senders inject in rotated order starting at
    ``(my_rank + 1) % P`` so low ranks are not hot-spotted, and receivers
    post all receives up front, completing them in *arrival* order with
    :func:`~repro.vmachine.comm.waitany` — each buffer is unpacked while
    later messages are still in flight.  The destination array is
    identical either way; only the clock trajectory differs.

Reliability and degradation
---------------------------
When the universe carries a :class:`~repro.vmachine.reliability.
Reliability` layer (``universe.enable_reliability()``), every ``TAG_DATA``
payload travels through the sequence-numbered ack/retransmit protocol:
drops and corruption are retransmitted, duplicates suppressed, reorder
holdbacks released at the fence.  Schedule construction keeps the bare
transport either way.  The send half ends with a **fence** (block until
every payload is cumulatively acked) in the coupled case; the
single-program :func:`data_move` fences once after both halves, releasing
held-back packets at the half boundary so two ranks holding each other's
final packet cannot wedge.

Without the layer, ``timeout`` bounds each blocking receive with an
exponential-backoff retry ladder (short slices first, so a late-but-alive
peer still succeeds) before surfacing ``TimeoutError`` — a lost peer
raises :class:`~repro.vmachine.faults.RankLostError` immediately via the
run's failure detector.

Multi-array fusion
------------------
This module moves **one** schedule's data.  A program moving k arrays
per step can compile the k schedules into a
:class:`~repro.core.plan.MovePlan` (:func:`~repro.core.api.
mc_compute_plan`) and execute them with one *fused* message per
processor pair instead of k — see :mod:`repro.core.plan`, which reuses
this module's local-copy and bounded-receive machinery
(:func:`_local_copies`, :func:`_recv_bounded`) so both executors share
identical degradation and reliability behaviour.  The single-schedule
entry points below never consult the plan module; fusion is strictly
opt-in and their clock trajectories are guarded byte-for-byte by CI.
"""

from __future__ import annotations

from typing import Any

from repro.core.policy import ExecutorPolicy, ordered_or_rotated
from repro.core.registry import get_adapter
from repro.core.schedule import CommSchedule
from repro.core.universe import TAG_DATA, Universe
from repro.vmachine.comm import waitany

__all__ = ["data_move", "data_move_send", "data_move_recv", "ExecutorPolicy"]

#: first slice of the bounded-retry receive ladder, as a fraction of the
#: total budget (doubles each retry; the last slice absorbs the remainder)
_RETRY_FIRST_FRACTION = 1 / 8


def _recv_bounded(
    universe: Universe, s: int, tag: int, timeout: float | None
) -> Any:
    """Blocking receive with a bounded-retry / exponential-backoff ladder.

    ``timeout`` is the *total* wall-clock budget.  The first attempt waits
    only a fraction of it, and each retry doubles the slice until the
    budget is spent — so transient wedges (a peer mid-retransmit, a held
    packet awaiting its fence) get several cheap re-checks while a truly
    lost peer still fails within the deadline.  Retries are free of
    logical time; only the eventual receive charges the clock.
    """
    if timeout is None:
        return universe.recv_from_src(s, tag)
    slice_s = max(timeout * _RETRY_FIRST_FRACTION, 1e-3)
    waited = 0.0
    while True:
        slice_s = min(slice_s, timeout - waited)
        try:
            return universe.recv_from_src(s, tag, timeout=slice_s)
        except TimeoutError:
            waited += slice_s
            if waited >= timeout - 1e-12:
                raise
            slice_s *= 2.0


def data_move_send(
    schedule: CommSchedule,
    src_array: Any,
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    fence: bool | None = None,
) -> None:
    """Execute the send half of a schedule (the paper's ``MC_DataMoveSend``).

    Must be called on every source-group processor; destination-group
    processors concurrently call :func:`data_move_recv`.  Intra-processor
    transfers are skipped here and handled by the receive half as direct
    copies when both arrays are local.

    Under ``ExecutorPolicy.OVERLAP`` the destinations are visited in
    rotated order starting at ``(my_src_rank + 1) % dst_size`` instead of
    ascending rank, staggering injection across the destination group.

    With reliability enabled, ``fence`` controls the end-of-half ack
    barrier: default ``None`` fences in the coupled (two-program) case —
    a pure sender must learn its peer received everything — and skips it
    in the single-program case, where :func:`data_move` fences once after
    the receive half (fencing between the halves would deadlock: every
    rank would await acks its peers only produce in *their* receive
    half).  A skipped fence still flushes held-back packets so the
    receive half cannot wedge on a reordered final message.  ``timeout``
    bounds the fence's ack wait.
    """
    if universe.my_src_rank is None:
        raise RuntimeError("data_move_send called on a non-source processor")
    policy = ExecutorPolicy.coerce(policy)
    adapter = get_adapter(schedule.src_lib)
    rel = universe.reliability
    order = ordered_or_rotated(
        list(schedule.sends), universe.my_src_rank, universe.dst_size, policy
    )
    proc = universe.process
    for d in order:
        offsets = schedule.sends[d]
        if len(offsets) == 0 or universe.same_proc_dst(d):
            continue
        with proc.span("pack"):
            buffer = adapter.pack(src_array, offsets)
        if rel is not None:
            rel.send(universe.data_endpoint_to_dst(), d, buffer, TAG_DATA)
        else:
            universe.send_to_dst(d, buffer, TAG_DATA)
    if rel is not None:
        if fence is None:
            fence = not universe.single_program
        if fence:
            rel.fence(timeout=timeout)
        else:
            rel.flush()


def data_move_recv(
    schedule: CommSchedule,
    dst_array: Any,
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Execute the receive half of a schedule (``MC_DataMoveRecv``).

    Under ``ExecutorPolicy.OVERLAP`` all receives are posted nonblocking
    up front and completed in logical-arrival order via ``waitany``; each
    message's elements are unpacked into ``dst_array`` while later
    messages are still in flight.  Placement depends only on the schedule
    offsets, so completion order never changes the destination data.

    ``donate=True`` lets an eligible received buffer (full-coverage
    unpack, exact dtype) be adopted directly as the destination array's
    storage instead of scattered through — the zero-copy receive path.
    The clock trajectory is identical either way.

    ``timeout`` bounds each blocking receive (wall-clock seconds); the
    bare-transport path retries with exponential backoff inside the
    budget before raising ``TimeoutError``, and a receive blocked on a
    rank the failure detector knows dead raises
    :class:`~repro.vmachine.faults.RankLostError` immediately.
    """
    if universe.my_dst_rank is None:
        raise RuntimeError("data_move_recv called on a non-destination processor")
    policy = ExecutorPolicy.coerce(policy)
    adapter = get_adapter(schedule.dst_lib)
    rel = universe.reliability
    proc = universe.process
    active = [
        s
        for s in sorted(schedule.recvs)
        if len(schedule.recvs[s]) != 0 and not universe.same_proc_src(s)
    ]

    def _unpack(s: int, buffer: Any) -> None:
        offsets = schedule.recvs[s]
        _check_piece(buffer, offsets, s)
        with proc.span("unpack"):
            adapter.unpack(dst_array, offsets, buffer, donate=donate)

    if rel is not None:
        endpoint = universe.data_endpoint_to_src()
        if policy is ExecutorPolicy.OVERLAP and len(active) > 1:
            remaining = set(active)
            while remaining:
                s, buffer = rel.recv_any(
                    endpoint, sorted(remaining), TAG_DATA, timeout=timeout
                )
                remaining.discard(s)
                _unpack(s, buffer)
            return
        for s in active:
            buffer = rel.recv(endpoint, s, TAG_DATA, timeout=timeout)
            _unpack(s, buffer)
        return
    if policy is ExecutorPolicy.OVERLAP and len(active) > 1:
        requests = [universe.irecv_from_src(s, TAG_DATA) for s in active]
        remaining = len(requests)
        while remaining:
            idx, buffer = waitany(requests, timeout=timeout)
            remaining -= 1
            _unpack(active[idx], buffer)
        return
    for s in active:
        buffer = _recv_bounded(universe, s, TAG_DATA, timeout)
        _unpack(s, buffer)


def _check_piece(buffer: Any, offsets: Any, s: int) -> None:
    if len(buffer) != len(offsets):
        raise RuntimeError(
            f"schedule mismatch: received {len(buffer)} elements from "
            f"source rank {s} but expected {len(offsets)}"
        )


def _local_copies(
    schedule: CommSchedule, src_array: Any, dst_array: Any, universe: Universe
) -> None:
    """Direct intra-processor copies (no intermediate buffer, §5.3).

    Delegates to :meth:`LibraryAdapter.copy_local`, which shares its
    lossy-cast refusal (:func:`~repro.core.registry.ensure_safe_cast`)
    with the remote unpack path — local and remote moves reject or allow
    exactly the same dtype pairs — and executes run-compressed halves as
    aligned slice-to-slice copies.
    """
    me_d = universe.my_dst_rank
    me_s = universe.my_src_rank
    if me_s is None or me_d is None:
        return
    src_offsets = schedule.sends.get(me_d)
    dst_offsets = schedule.recvs.get(me_s)
    if src_offsets is None or len(src_offsets) == 0:
        return
    if dst_offsets is None or len(dst_offsets) != len(src_offsets):
        raise RuntimeError("inconsistent local halves of the schedule")
    # Both offset lists are linearization-ordered over the same element
    # subset, so a direct aligned copy is correct.
    with universe.process.span("copy:local"):
        get_adapter(schedule.dst_lib).copy_local(
            src_array, src_offsets, dst_array, dst_offsets,
            src_adapter=get_adapter(schedule.src_lib),
        )


def data_move(
    schedule: CommSchedule,
    src_array: Any,
    dst_array: Any,
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Full copy for processors holding both roles (single program), or a
    convenience wrapper dispatching to the proper half otherwise.

    In the single-program case: local elements are copied directly, then
    the aggregated inter-processor messages flow (sends first — the
    virtual transport is buffered, so this cannot deadlock).  With
    reliability enabled the rank fences once at the end, after its
    receive half, when every peer is already producing acks.
    """
    policy = ExecutorPolicy.coerce(policy)
    if universe.single_program:
        _local_copies(schedule, src_array, dst_array, universe)
        data_move_send(schedule, src_array, universe, policy=policy,
                       timeout=timeout, fence=False)
        data_move_recv(schedule, dst_array, universe, policy=policy,
                       timeout=timeout, donate=donate)
        universe.rel_fence(timeout=timeout)
        return
    if universe.my_src_rank is not None:
        data_move_send(schedule, src_array, universe, policy=policy,
                       timeout=timeout)
    if universe.my_dst_rank is not None:
        data_move_recv(schedule, dst_array, universe, policy=policy,
                       timeout=timeout, donate=donate)
