"""Moving data with a communication schedule (§4.1.4).

Each source processor packs, per destination processor, all elements bound
there into one contiguous buffer — "messages are aggregated, so that at
most one message is sent between each source and each destination
processor" — and intra-processor transfers (single-program case) are
copied directly between the two arrays' storage with no intermediate
buffer.
"""

from __future__ import annotations

from typing import Any

from repro.core.registry import get_adapter
from repro.core.schedule import CommSchedule
from repro.core.universe import TAG_DATA, Universe

__all__ = ["data_move", "data_move_send", "data_move_recv"]


def data_move_send(
    schedule: CommSchedule, src_array: Any, universe: Universe
) -> None:
    """Execute the send half of a schedule (the paper's ``MC_DataMoveSend``).

    Must be called on every source-group processor; destination-group
    processors concurrently call :func:`data_move_recv`.  Intra-processor
    transfers are skipped here and handled by the receive half as direct
    copies when both arrays are local.
    """
    if universe.my_src_rank is None:
        raise RuntimeError("data_move_send called on a non-source processor")
    adapter = get_adapter(schedule.src_lib)
    for d in sorted(schedule.sends):
        offsets = schedule.sends[d]
        if len(offsets) == 0 or universe.same_proc_dst(d):
            continue
        buffer = adapter.pack(src_array, offsets)
        universe.send_to_dst(d, buffer, TAG_DATA)


def data_move_recv(
    schedule: CommSchedule, dst_array: Any, universe: Universe
) -> None:
    """Execute the receive half of a schedule (``MC_DataMoveRecv``)."""
    if universe.my_dst_rank is None:
        raise RuntimeError("data_move_recv called on a non-destination processor")
    adapter = get_adapter(schedule.dst_lib)
    for s in sorted(schedule.recvs):
        offsets = schedule.recvs[s]
        if len(offsets) == 0 or universe.same_proc_src(s):
            continue
        buffer = universe.recv_from_src(s, TAG_DATA)
        if len(buffer) != len(offsets):
            raise RuntimeError(
                f"schedule mismatch: received {len(buffer)} elements from "
                f"source rank {s} but expected {len(offsets)}"
            )
        adapter.unpack(dst_array, offsets, buffer)


def _local_copies(
    schedule: CommSchedule, src_array: Any, dst_array: Any, universe: Universe
) -> None:
    """Direct intra-processor copies (no intermediate buffer, §5.3).

    Delegates to :meth:`LibraryAdapter.copy_local`, which shares its
    lossy-cast refusal (:func:`~repro.core.registry.ensure_safe_cast`)
    with the remote unpack path — local and remote moves reject or allow
    exactly the same dtype pairs — and executes run-compressed halves as
    aligned slice-to-slice copies.
    """
    me_d = universe.my_dst_rank
    me_s = universe.my_src_rank
    if me_s is None or me_d is None:
        return
    src_offsets = schedule.sends.get(me_d)
    dst_offsets = schedule.recvs.get(me_s)
    if src_offsets is None or len(src_offsets) == 0:
        return
    if dst_offsets is None or len(dst_offsets) != len(src_offsets):
        raise RuntimeError("inconsistent local halves of the schedule")
    # Both offset lists are linearization-ordered over the same element
    # subset, so a direct aligned copy is correct.
    get_adapter(schedule.dst_lib).copy_local(
        src_array, src_offsets, dst_array, dst_offsets,
        src_adapter=get_adapter(schedule.src_lib),
    )


def data_move(
    schedule: CommSchedule, src_array: Any, dst_array: Any, universe: Universe
) -> None:
    """Full copy for processors holding both roles (single program), or a
    convenience wrapper dispatching to the proper half otherwise.

    In the single-program case: local elements are copied directly, then
    the aggregated inter-processor messages flow (sends first — the
    virtual transport is buffered, so this cannot deadlock).
    """
    if universe.single_program:
        _local_copies(schedule, src_array, dst_array, universe)
        data_move_send(schedule, src_array, universe)
        data_move_recv(schedule, dst_array, universe)
        return
    if universe.my_src_rank is not None:
        data_move_send(schedule, src_array, universe)
    if universe.my_dst_rank is not None:
        data_move_recv(schedule, dst_array, universe)
