"""Schedule validation and diagnostics.

Debugging a wrong inter-library copy in 1996 meant staring at message
dumps; this module gives the reproduction proper tooling:

- :func:`validate_schedule` — collective, machine-checkable consistency:
  pairwise send/receive counts match, offsets are legal local addresses,
  no destination slot receives twice, and the total element count equals
  the SetOfRegions conformance size;
- :func:`schedule_stats` — collective summary (element counts, message
  counts, bytes, locality fraction) for performance inspection;
- :func:`explain_schedule` — one rank's human-readable schedule dump.

These are exercised by the test suite and available to library users
through ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.registry import get_adapter
from repro.core.schedule import CommSchedule
from repro.vmachine.comm import Communicator

__all__ = [
    "ScheduleValidationError",
    "ScheduleStats",
    "validate_schedule",
    "schedule_stats",
    "explain_schedule",
]

_TAG_VALIDATE = (1 << 21) + 33


class ScheduleValidationError(AssertionError):
    """A schedule consistency check failed."""


@dataclass
class ScheduleStats:
    """Machine-level summary of one schedule (same on every rank)."""

    n_elements: int
    message_pairs: int
    local_elements: int
    remote_elements: int
    max_pair_elements: int

    @property
    def locality(self) -> float:
        """Fraction of elements that never leave their processor."""
        total = self.local_elements + self.remote_elements
        return self.local_elements / total if total else 1.0


def validate_schedule(
    comm: Communicator,
    schedule: CommSchedule,
    src_array=None,
    dst_array=None,
) -> None:
    """Collectively verify a single-program schedule's consistency.

    Raises :class:`ScheduleValidationError` (on every rank) describing the
    first violation found.  ``src_array``/``dst_array`` enable the local
    address-range checks when provided.
    """
    problems: list[str] = []

    # Local structural checks.
    for d, offs in schedule.sends.items():
        if not 0 <= d < schedule.dst_size:
            problems.append(f"send destination {d} out of range")
        if src_array is not None and len(offs):
            n = get_adapter(schedule.src_lib).local_data(src_array).size
            if offs.min() < 0 or offs.max() >= n:
                problems.append(
                    f"send offsets to {d} outside local storage [0,{n})"
                )
    for s, offs in schedule.recvs.items():
        if not 0 <= s < schedule.src_size:
            problems.append(f"receive source {s} out of range")
        if dst_array is not None and len(offs):
            n = get_adapter(schedule.dst_lib).local_data(dst_array).size
            if offs.min() < 0 or offs.max() >= n:
                problems.append(
                    f"recv offsets from {s} outside local storage [0,{n})"
                )
    all_recv = (
        np.concatenate([v for v in schedule.recvs.values()])
        if schedule.recvs
        else np.zeros(0, dtype=np.int64)
    )
    if len(np.unique(all_recv)) != len(all_recv):
        problems.append("a destination slot receives more than one element")

    # Cross-rank pairwise counts: gather everyone's (sends, recvs) sizes.
    send_counts = {d: len(v) for d, v in schedule.sends.items()}
    recv_counts = {s: len(v) for s, v in schedule.recvs.items()}
    gathered = comm.allgather((send_counts, recv_counts))
    total_sent = 0
    for s, (sends, _) in enumerate(gathered):
        for d, n in sends.items():
            total_sent += n
            other = gathered[d][1].get(s, 0)
            if other != n:
                problems.append(
                    f"pair ({s}->{d}): {n} elements sent but {other} expected"
                )
    if total_sent != schedule.n_elements:
        problems.append(
            f"schedule covers {total_sent} elements, SetOfRegions has "
            f"{schedule.n_elements}"
        )

    # Agree on the verdict collectively so every rank raises.
    all_problems = comm.allgather(problems)
    flat = [p for rank_p in all_problems for p in rank_p]
    if flat:
        raise ScheduleValidationError("; ".join(sorted(set(flat))[:5]))


def schedule_stats(comm: Communicator, schedule: CommSchedule) -> ScheduleStats:
    """Collective machine-level schedule summary (identical on all ranks)."""
    me = comm.rank
    local = len(schedule.sends.get(me, np.zeros(0)))
    remote = sum(len(v) for d, v in schedule.sends.items() if d != me)
    pairs = sum(1 for d, v in schedule.sends.items() if d != me and len(v))
    per_pair = [len(v) for d, v in schedule.sends.items() if d != me and len(v)]
    totals = comm.allreduce(
        (local, remote, pairs, max(per_pair, default=0)),
        lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2], max(a[3], b[3])),
    )
    return ScheduleStats(
        n_elements=schedule.n_elements,
        message_pairs=totals[2],
        local_elements=totals[0],
        remote_elements=totals[1],
        max_pair_elements=totals[3],
    )


def explain_schedule(schedule: CommSchedule, max_entries: int = 5) -> str:
    """Human-readable dump of this rank's halves of a schedule."""
    lines = [
        f"CommSchedule {schedule.src_lib} -> {schedule.dst_lib} "
        f"({schedule.n_elements} elements, method={schedule.method.value})"
    ]
    for d in sorted(schedule.sends):
        offs = schedule.sends[d]
        head = ", ".join(str(int(o)) for o in offs[:max_entries])
        more = f", ... +{len(offs) - max_entries}" if len(offs) > max_entries else ""
        lines.append(f"  send {len(offs):>6} -> dst rank {d}: [{head}{more}]")
    for s in sorted(schedule.recvs):
        offs = schedule.recvs[s]
        head = ", ".join(str(int(o)) for o in offs[:max_entries])
        more = f", ... +{len(offs) - max_entries}" if len(offs) > max_entries else ""
        lines.append(f"  recv {len(offs):>6} <- src rank {s}: [{head}{more}]")
    if not schedule.sends and not schedule.recvs:
        lines.append("  (this rank moves no elements)")
    return "\n".join(lines)
