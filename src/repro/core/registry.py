"""Library adapters: the interface functions every library exports (§4.1.3).

"The implementation of the schedule computation algorithm requires that a
set of procedures be provided by both the source and destination data
parallel libraries ... a standard set of inquiry functions."  A
:class:`LibraryAdapter` bundles those procedures:

- :meth:`~LibraryAdapter.deref_lin` — dereference linearization positions
  of a SetOfRegions to (owner rank, local address);
- :meth:`~LibraryAdapter.local_elements` — enumerate the calling rank's
  own elements of a SetOfRegions (with their linearization positions);
- :meth:`~LibraryAdapter.pack` / :meth:`~LibraryAdapter.unpack` — move
  elements between local storage and communication buffers;
- :meth:`~LibraryAdapter.export_handle` — produce the exchangeable data
  descriptor the *duplication* schedule method ships between programs.

"A major concern in designing Meta-Chaos was to require that relatively
few procedures be provided by the data parallel library implementor" —
the base class derives almost everything from the library's
:class:`~repro.distrib.base.Distribution`, so a concrete adapter mostly
chooses a *cost policy* (closed-form regular arithmetic vs. per-element
translation-table lookups).

Adapters register by library name in a process-global registry, which is
what the paper's ``MC_ComputeSched(HPF, ...)`` first argument looks up.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.dataplane import compile_offsets, copy_compiled
from repro.core.runs import RunList, as_offsets
from repro.core.setofregions import SetOfRegions
from repro.core.region import SectionRegion
from repro.distrib.base import DistDescriptor, Distribution
from repro.distrib.cartesian import CartesianDist
from repro.vmachine.process import current_process

__all__ = [
    "RemoteHandle",
    "LibraryAdapter",
    "register_adapter",
    "get_adapter",
    "registered_libraries",
    "ensure_safe_cast",
]


def ensure_safe_cast(src_dtype, dst_dtype) -> None:
    """Reject lossy element-type conversions during a data move.

    The single authority for which dtype pairs a move may convert: local
    direct copies, remote unpack and adapter-level copies all call this,
    so the two paths can never drift apart.  The libraries of the era
    transferred raw typed buffers, and a silent truncation would corrupt
    data undetectably.  Widening/same-kind conversions (float32 ->
    float64, int -> float) are allowed.
    """
    if not np.can_cast(src_dtype, dst_dtype, "same_kind"):
        raise TypeError(
            f"refusing lossy element conversion {src_dtype} -> "
            f"{dst_dtype} during a data move; convert explicitly first"
        )


@dataclass(frozen=True)
class RemoteHandle:
    """Exchangeable stand-in for a distributed array of another program.

    Carries everything dereferencing needs (distribution descriptor,
    global shape, element size) but no data.  ``nbytes`` is its transport
    size — dominated by the distribution descriptor, which is tiny for
    regular distributions and data-sized for Chaos translation tables.
    """

    library: str
    descriptor: DistDescriptor
    shape: tuple[int, ...]
    itemsize: int

    @property
    def nbytes(self) -> int:
        return 64 + self.descriptor.nbytes

    def materialize(self) -> "MaterializedHandle":
        return MaterializedHandle(self)


class MaterializedHandle:
    """A :class:`RemoteHandle` with its distribution rebuilt for lookups."""

    def __init__(self, remote: RemoteHandle):
        self.library = remote.library
        self.shape = remote.shape
        self.itemsize = remote.itemsize
        self.dist = remote.descriptor.materialize()


class LibraryAdapter(abc.ABC):
    """Interface functions of one data parallel library.

    Concrete adapters supply :attr:`name`, the handle introspection
    methods, and the cost policy; the heavy lifting (linearization
    arithmetic, owner lookup) is generic.
    """

    #: registry key; the paper's library identifier (e.g. "hpf", "chaos")
    name: str = ""

    # -- handle introspection (override per library) -------------------------

    @abc.abstractmethod
    def dist_of(self, handle: Any) -> Distribution:
        """The distribution of an array handle (local or materialized)."""

    @abc.abstractmethod
    def shape_of(self, handle: Any) -> tuple[int, ...]:
        """Global shape of the handle."""

    @abc.abstractmethod
    def local_data(self, array: Any) -> np.ndarray:
        """The rank-local storage of a *local* array handle.

        Any strided ndarray is acceptable — 1-D of any step,
        C-contiguous blocks, or arbitrary non-contiguous layouts
        (transposed, sliced).  The compiled data plane addresses all of
        them without a staging copy; flat offsets index the storage in
        logical (C) order.
        """

    def adopt_local(self, array: Any, values: np.ndarray) -> bool:
        """Adopt ``values`` as the array's new local storage (donation).

        Called by :meth:`unpack` when a received buffer may be donated
        wholesale instead of copied through.  Adapters whose arrays can
        rebind their storage return True after adopting; the default
        declines and the caller falls back to a scatter copy.
        """
        return False

    @abc.abstractmethod
    def itemsize_of(self, handle: Any) -> int:
        """Element size in bytes."""

    # -- cost policy (override per library) -----------------------------------

    @abc.abstractmethod
    def charge_deref(self, n: int) -> None:
        """Charge the cost of dereferencing ``n`` elements."""

    def charge_locate(self, nruns: int, nelems: int) -> None:
        """Charge the cost of enumerating ``nelems`` locally-owned elements
        found as ``nruns`` runs."""
        current_process().charge_locate(nruns, nelems)

    # -- derived operations (generic) ------------------------------------------

    def deref_lin(
        self, handle: Any, sor: SetOfRegions, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Owner rank and local offset of each linearization position.

        This is the paper's "dereferencing an object in a SetOfRegions to
        determine the owning processor and local address, and a position
        in the linearization".
        """
        shape = self.shape_of(handle)
        gidx = sor.lin_to_global(np.asarray(positions, dtype=np.int64), shape)
        self.charge_deref(len(gidx))
        return self.dist_of(handle).owner_of_flat(gidx)

    def deref_range(
        self, handle: Any, sor: SetOfRegions, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`deref_lin` for the contiguous position range [lo, hi)."""
        return self.deref_lin(handle, sor, np.arange(lo, hi, dtype=np.int64))

    def local_elements(
        self, handle: Any, sor: SetOfRegions, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Linearization positions and local offsets of ``rank``'s elements.

        Generic fallback: dereference everything and filter.  Regular
        libraries override this with closed-form block intersection (no
        per-element dereference), which is what makes the duplication
        method communication-free *and* cheap for regular meshes.
        """
        n = sor.size
        ranks, offsets = self.deref_range(handle, sor, 0, n)
        mask = ranks == rank
        return np.flatnonzero(mask).astype(np.int64), offsets[mask]

    # -- data movement ----------------------------------------------------------

    def pack(self, array: Any, offsets: np.ndarray | RunList) -> np.ndarray:
        """Gather local elements at ``offsets`` into a contiguous buffer.

        Run-compressed offsets execute as slice copies (contiguous runs
        at memcpy speed, strided runs as strided slices); only genuinely
        irregular offsets pay a NumPy fancy gather.  The logical-clock
        charge depends solely on the element count, so both paths cost
        the same simulated time.
        """
        data = self.local_data(array)
        prog = compile_offsets(as_offsets(offsets))
        current_process().charge_pack(prog.n)
        return prog.gather(data)

    def pack_into(
        self, array: Any, offsets: np.ndarray | RunList, out: np.ndarray
    ) -> None:
        """:meth:`pack`, but gathering straight into caller-owned storage.

        The fused-plan executor (:mod:`repro.core.plan`) leases one
        staging buffer per destination from the rank's
        :class:`~repro.vmachine.message.PackArena` and packs every
        schedule's segment into its slice of that buffer — no per-segment
        allocation.  ``out`` must be 1-D with exactly ``len(offsets)``
        slots of the source array's element type.  The logical-clock
        charge is identical to :meth:`pack` (same element count), so
        fused and sequential moves cost the same pack time.

        Rejects lossy element-type conversions via
        :func:`ensure_safe_cast`, exactly like :meth:`unpack` and
        :meth:`copy_local` — a fused plan must not silently lossy-cast
        into a leased staging buffer.
        """
        data = self.local_data(array)
        prog = compile_offsets(as_offsets(offsets))
        if len(out) != prog.n:
            raise ValueError(
                f"pack_into buffer has {len(out)} slots for "
                f"{prog.n} offsets"
            )
        if prog.n:
            ensure_safe_cast(data.dtype, out.dtype)
        current_process().charge_pack(prog.n)
        prog.gather(data, out=out)

    def unpack(
        self,
        array: Any,
        offsets: np.ndarray | RunList,
        values: np.ndarray,
        donate: bool = False,
    ) -> bool:
        """Scatter buffer ``values`` into local elements at ``offsets``.

        Rejects lossy element-type conversions via :func:`ensure_safe_cast`
        (shared with the direct local-copy path).  Compiled offsets
        scatter as one batched store.

        With ``donate=True`` and a program that overwrites the entire
        local storage in order (``[0, size)`` ascending, exact dtype
        match, 1-D writable buffer), the received buffer is *adopted* as
        the array's storage instead of being copied through — the
        zero-copy receive path.  Returns True when the buffer was
        donated (the caller must then stop reusing/releasing it); the
        logical-clock charge is identical either way.
        """
        data = self.local_data(array)
        prog = compile_offsets(as_offsets(offsets))
        values = np.asarray(values)
        if prog.n:
            ensure_safe_cast(values.dtype, data.dtype)
        current_process().charge_pack(prog.n)
        if (
            donate
            and values.ndim == 1
            and values.size == prog.n
            and values.dtype == data.dtype
            and values.flags.writeable
            and prog.is_full_span(data.size)
            and self.adopt_local(array, values)
        ):
            return True
        prog.scatter(data, values)
        return False

    def copy_local(
        self,
        src_array: Any,
        src_offsets: np.ndarray | RunList,
        dst_array: Any,
        dst_offsets: np.ndarray | RunList,
        src_adapter: "LibraryAdapter | None" = None,
    ) -> None:
        """Direct local-to-local copy (no intermediate buffer).

        The paper highlights this as a Meta-Chaos advantage over Multiblock
        Parti's internal buffering for intra-processor moves (§5.3), so
        only one pack-side charge applies.  ``self`` is the *destination*
        library's adapter; pass ``src_adapter`` when the source array
        belongs to a different library.  Run-compressed halves copy as
        aligned slice pairs with no per-element indexing.
        """
        src_data = (src_adapter or self).local_data(src_array)
        dst_data = self.local_data(dst_array)
        src_prog = compile_offsets(as_offsets(src_offsets))
        dst_prog = compile_offsets(as_offsets(dst_offsets))
        if src_prog.n:
            ensure_safe_cast(src_data.dtype, dst_data.dtype)
        current_process().charge_pack(src_prog.n)
        copy_compiled(src_prog, src_data, dst_prog, dst_data)

    # -- duplication-method support ----------------------------------------------

    def export_handle(self, array: Any) -> RemoteHandle:
        """Exchangeable descriptor of a local array (for duplication)."""
        return RemoteHandle(
            library=self.name,
            descriptor=self.dist_of(array).descriptor(),
            shape=self.shape_of(array),
            itemsize=self.itemsize_of(array),
        )

    def resolve_handle(self, handle: Any) -> Any:
        """Accept either a local array or a RemoteHandle and return an
        object usable with the introspection methods."""
        if isinstance(handle, RemoteHandle):
            return handle.materialize()
        return handle


# -- helpers shared by the regular-library adapters -----------------------------


def cartesian_local_elements(
    dist: CartesianDist,
    shape: tuple[int, ...],
    sor: SetOfRegions,
    rank: int,
    charge,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form ``local_elements`` for Cartesian block distributions.

    Intersects every SectionRegion with the rank's owned block per
    dimension, producing the rank's elements without dereferencing the
    rest.  Falls back to a full (cheap, vectorized) scan for CYCLIC-style
    dims where ownership is not a contiguous block, and for IndexRegions.

    ``charge(nruns, nelems)`` is the adapter's locate cost hook.
    """
    positions: list[np.ndarray] = []
    offsets: list[np.ndarray] = []
    start = 0
    contiguous = all(d.kind in ("block", "collapsed") for d in dist.dims)
    block = dist.owned_block(rank) if contiguous else None
    for region in sor.regions:
        n = region.size
        # The closed-form path assumes the default row-major linearization
        # (lin_offset_of enumerates C-order); other orders use the scan.
        if isinstance(region, SectionRegion) and contiguous and region.order == "C":
            lows = tuple(b[0] for b in block)
            highs = tuple(b[1] for b in block)
            sub = region.section.intersect_block(lows, highs)
            if sub is not None:
                lin = region.section.lin_offset_of(sub)
                gidx = sub.global_flat(shape)
                _, offs = dist.owner_of_flat(gidx)
                # Run count ~ product of counts of all but the last dim.
                nruns = max(1, sub.size // max(1, sub.counts[-1]))
                charge(nruns, len(lin))
                positions.append(lin + start)
                offsets.append(offs)
        else:
            gidx = region.global_flat(shape)
            ranks, offs = dist.owner_of_flat(gidx)
            mask = ranks == rank
            charge(1, n)
            positions.append(np.flatnonzero(mask).astype(np.int64) + start)
            offsets.append(offs[mask])
        start += n
    if not positions:
        z = np.zeros(0, dtype=np.int64)
        return z, z
    return np.concatenate(positions), np.concatenate(offsets)


# -- the registry -----------------------------------------------------------------

_REGISTRY: dict[str, LibraryAdapter] = {}


def register_adapter(adapter: LibraryAdapter) -> LibraryAdapter:
    """Register a library's adapter under ``adapter.name``.

    Re-registering the same name replaces the entry (useful in tests).
    """
    if not adapter.name:
        raise ValueError("adapter needs a non-empty name")
    _REGISTRY[adapter.name] = adapter
    return adapter


def get_adapter(name: str) -> LibraryAdapter:
    """Look up a registered library adapter by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no data parallel library {name!r} registered with Meta-Chaos; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


def registered_libraries() -> list[str]:
    return sorted(_REGISTRY)
