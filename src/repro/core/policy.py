"""Executor policies for the Meta-Chaos data-move and schedule exchanges.

The paper's executor sends "at most one message per processor pair" but says
nothing about *order*.  Our reproduction historically drained those messages
in ascending group-rank order, which (a) hot-spots low ranks — every sender
injects toward rank 0 first — and (b) serializes receivers on the slowest
low-numbered source even when higher-numbered sources have already arrived.

:class:`ExecutorPolicy` selects between:

``ORDERED``
    The paper-faithful default.  Sends and receives are issued in ascending
    group-rank order.  Logical clocks are byte-for-byte identical to every
    previously published result (tables 3/4/5).

``OVERLAP``
    The latency-hiding executor.  Senders inject in *rotated* order starting
    at ``(my_rank + 1) % P`` (see :func:`rotated_order`) so that injections
    are spread across destinations instead of dog-piling on rank 0, and
    receivers complete messages in *arrival* order via
    :func:`~repro.vmachine.comm.waitany`, unpacking one message's data while
    later messages are still in flight.  Destination data is identical to
    ``ORDERED`` (placement depends only on the schedule, never on completion
    order); only the logical clocks change.

This module is dependency-free within :mod:`repro.core` so that both
:mod:`repro.core.datamove` and :mod:`repro.core.schedule` can import it
without creating a cycle.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

__all__ = ["ExecutorPolicy", "rotated_order", "ordered_or_rotated"]


class ExecutorPolicy(Enum):
    """How the data-move executor orders message injection and completion."""

    #: paper-faithful: ascending-rank sends, ascending-rank blocking receives
    ORDERED = "ordered"
    #: latency-hiding: rotated injection + arrival-order (wait-any) completion
    OVERLAP = "overlap"

    @classmethod
    def coerce(cls, value: "ExecutorPolicy | str") -> "ExecutorPolicy":
        """Accept either an enum member or its string value (CLI friendly)."""
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


def rotated_order(
    ranks: Iterable[int], my_rank: int, group_size: int
) -> list[int]:
    """Deterministic staggered injection order for ``my_rank``.

    Sorts ``ranks`` by their rotated distance from ``my_rank + 1`` modulo
    ``group_size`` — i.e. rank ``r`` starts its injections at its right
    neighbour and wraps around, so in a dense exchange the P senders target
    P distinct destinations at every step instead of all hammering rank 0.

    Ties (impossible for distinct in-range ranks, but kept for safety with
    arbitrary iterables) break on the rank itself, keeping the order fully
    deterministic.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    start = (my_rank + 1) % group_size
    return sorted(ranks, key=lambda r: ((r - start) % group_size, r))


def ordered_or_rotated(
    ranks: Sequence[int],
    my_rank: int,
    group_size: int,
    policy: ExecutorPolicy,
) -> list[int]:
    """``sorted(ranks)`` under ORDERED, :func:`rotated_order` under OVERLAP."""
    if policy is ExecutorPolicy.OVERLAP:
        return rotated_order(ranks, my_rank, group_size)
    return sorted(ranks)
