"""Fused multi-array data moves: the MovePlan compiler and executors.

A single :class:`~repro.core.schedule.CommSchedule` already aggregates
traffic so "at most one message is sent between each source and each
destination processor" — *per copy*.  Coupled applications, though, move
**several** arrays along the same (or compatible) mappings every timestep:
the paper's §5.1 mesh exchange ships multiple physical fields per
iteration, and §5.4's client/server transfers a batch of vectors.  Run as
k separate copies that costs ``k * P * (P-1)`` messages — k latencies
(LogGP α) per processor pair where one would do.

:func:`compile_plan` turns k schedules sharing a universe into a
:class:`MovePlan`: per destination processor, a *pack program* — the
ordered list of (schedule id, run-compressed offsets) segments whose
elements travel in **one** fused message — and the mirror-image unpack
program per source processor.  Executing the plan
(:func:`plan_move` / :func:`plan_move_send` / :func:`plan_move_recv`)
sends ``P * (P-1)`` messages total, saving ``k-1`` α's per active pair,
at the price of per-segment headers and alignment padding
(:class:`~repro.core.wire.FusedBuffer` — the honest wire size).

Pack staging goes through the per-rank
:class:`~repro.vmachine.message.PackArena`: one pooled buffer per fused
message, leased at pack time and returned by the *receiver* after the
last segment is unpacked, so iterative exchange loops stop allocating
per message per timestep.  Arena checkout/release never charges the
logical clock — pool behaviour cannot perturb timing determinism.

Everything else mirrors :mod:`repro.core.datamove` deliberately: both
executor policies (``ORDERED`` and the latency-hiding ``OVERLAP``
wait-any), the reliable-delivery path (fused payloads are opaque to the
ack/retransmit protocol), fence semantics, bounded-retry receives, and
direct intra-processor copies.  Fusion is strictly opt-in: the
single-schedule entry points never route through this module, so their
logical clocks stay byte-identical to the published tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.datamove import _local_copies, _recv_bounded
from repro.core.policy import ExecutorPolicy, ordered_or_rotated
from repro.core.registry import get_adapter
from repro.core.runs import RunList
from repro.core.schedule import CommSchedule
from repro.core.universe import TAG_DATA, Universe
from repro.core.wire import FusedBuffer, SegmentHeader, segment_layout
from repro.vmachine.comm import waitany

__all__ = [
    "MovePlan",
    "PlanSegment",
    "compile_plan",
    "plan_move",
    "plan_move_send",
    "plan_move_recv",
]


@dataclass(frozen=True)
class PlanSegment:
    """One schedule's contribution to one fused message.

    ``schedule_id`` indexes :attr:`MovePlan.schedules`; ``offsets`` is
    that schedule's run-compressed half for the peer this segment's
    program addresses (send half on the source side, receive half on the
    destination side).
    """

    schedule_id: int
    offsets: RunList

    @property
    def count(self) -> int:
        return len(self.offsets)


@dataclass(frozen=True)
class MovePlan:
    """Compiled fusion of k schedules into one message per processor pair.

    ``send_programs[d]`` — the pack program this rank runs for
    destination-group rank ``d``: segments in schedule order, one per
    member schedule with elements bound for ``d``.  Present (nonempty)
    only on source-group members with traffic.

    ``recv_programs[s]`` — the unpack program for source-group rank
    ``s``, mirror-ordered so the i-th received segment scatters through
    the i-th program entry.  The wire carries self-describing
    :class:`~repro.core.wire.SegmentHeader` entries besides, and the
    executor cross-checks them, so a sender/receiver plan mismatch fails
    loudly.

    Compilation is purely local — it reorganizes this rank's existing
    schedule halves and charges no logical time, so compiling a plan is
    never a collective operation (every rank may compile independently,
    or not at all).
    """

    schedules: tuple[CommSchedule, ...]
    send_programs: dict[int, tuple[PlanSegment, ...]]
    recv_programs: dict[int, tuple[PlanSegment, ...]]

    # -- introspection (benchmarks, plan-summary CLI, tests) ----------------

    @property
    def nschedules(self) -> int:
        return len(self.schedules)

    @property
    def fused_message_count(self) -> int:
        """Messages this rank sends when the plan executes (remote pairs
        counted; the executor additionally skips the self-pair)."""
        return len(self.send_programs)

    @property
    def unfused_message_count(self) -> int:
        """Messages the same traffic costs as k sequential copies."""
        return sum(len(prog) for prog in self.send_programs.values())

    @property
    def alpha_saved(self) -> int:
        """Per-pair message latencies the fusion eliminates on this rank."""
        return self.unfused_message_count - self.fused_message_count

    def pair_table(self, itemsizes: Sequence[int] | None = None) -> list[dict]:
        """Per-destination summary rows (peer, segments, elements, bytes).

        ``itemsizes`` supplies each schedule's element size (default 8:
        the paper's doubles); ``data_bytes`` is the fused message's
        payload before headers/padding (the exact wire size needs the
        arrays' dtypes — see :attr:`~repro.core.wire.FusedBuffer.nbytes`).
        """
        if itemsizes is None:
            itemsizes = [8] * len(self.schedules)
        rows = []
        for d in sorted(self.send_programs):
            prog = self.send_programs[d]
            data_bytes = sum(
                seg.count * itemsizes[seg.schedule_id] for seg in prog
            )
            rows.append(
                {
                    "peer": d,
                    "segments": len(prog),
                    "elements": sum(seg.count for seg in prog),
                    "data_bytes": data_bytes,
                    "alpha_saved": len(prog) - 1,
                }
            )
        return rows


def compile_plan(schedules: Sequence[CommSchedule]) -> MovePlan:
    """Compile schedules sharing one universe into a :class:`MovePlan`.

    Validates that every member spans the same source/destination group
    sizes (they must have been built over the same
    :class:`~repro.core.universe.Universe` shape).  Fusion decisions are
    driven by :meth:`CommSchedule.stats`: only peers a schedule actually
    messages contribute segments, so an all-local schedule adds nothing
    to any program.
    """
    schedules = tuple(schedules)
    if not schedules:
        raise ValueError("compile_plan needs at least one schedule")
    s0 = schedules[0]
    for i, sched in enumerate(schedules[1:], start=1):
        if (sched.src_size, sched.dst_size) != (s0.src_size, s0.dst_size):
            raise ValueError(
                f"schedule {i} spans groups "
                f"{sched.src_size}x{sched.dst_size} but schedule 0 spans "
                f"{s0.src_size}x{s0.dst_size}; a plan needs one universe"
            )
    send_programs: dict[int, list[PlanSegment]] = {}
    recv_programs: dict[int, list[PlanSegment]] = {}
    for sid, sched in enumerate(schedules):
        st = sched.stats()
        for d in st.send_elements:
            send_programs.setdefault(d, []).append(
                PlanSegment(sid, sched.sends[d])
            )
        for s in st.recv_elements:
            recv_programs.setdefault(s, []).append(
                PlanSegment(sid, sched.recvs[s])
            )
    return MovePlan(
        schedules=schedules,
        send_programs={d: tuple(p) for d, p in sorted(send_programs.items())},
        recv_programs={s: tuple(p) for s, p in sorted(recv_programs.items())},
    )


# ---------------------------------------------------------------------------
# fused pack / unpack
# ---------------------------------------------------------------------------


def _pack_fused(
    plan: MovePlan,
    program: tuple[PlanSegment, ...],
    src_arrays: Sequence[Any],
    universe: Universe,
) -> FusedBuffer:
    """Pack every segment of one destination's program into one staging
    buffer leased from this rank's arena."""
    proc = universe.process
    headers = []
    for seg in program:
        sched = plan.schedules[seg.schedule_id]
        adapter = get_adapter(sched.src_lib)
        data = adapter.local_data(src_arrays[seg.schedule_id])
        headers.append(
            SegmentHeader(seg.schedule_id, data.dtype.str, seg.count)
        )
    headers = tuple(headers)
    _, total = segment_layout(headers)
    lease = proc.arena.checkout(total, pooled=not proc.copy_on_send)
    fused = FusedBuffer(headers, lease.buffer, lease=lease)
    with proc.span("pack"):
        for i, seg in enumerate(program):
            sched = plan.schedules[seg.schedule_id]
            get_adapter(sched.src_lib).pack_into(
                src_arrays[seg.schedule_id], seg.offsets, fused.segment(i)
            )
    return fused


def _unpack_fused(
    plan: MovePlan,
    program: tuple[PlanSegment, ...],
    dst_arrays: Sequence[Any],
    fused: FusedBuffer,
    s: int,
    universe: Universe,
    donate: bool = False,
) -> None:
    """Scatter one fused message through its unpack program, then return
    the staging buffer to the sender's arena.

    With ``donate=True`` an eligible segment (full-coverage unpack,
    exact dtype) is adopted directly as the destination array's storage;
    the buffer's arena lease is then severed — the bytes belong to the
    array now and must never be recycled — and :meth:`release` becomes
    a no-op.
    """
    _check_fused(program, fused, s)
    donated = False
    with universe.process.span("unpack"):
        for i, seg in enumerate(program):
            sched = plan.schedules[seg.schedule_id]
            if get_adapter(sched.dst_lib).unpack(
                dst_arrays[seg.schedule_id], seg.offsets, fused.segment(i),
                donate=donate,
            ):
                donated = True
    if donated:
        fused.sever_lease()
    fused.release()


def _check_fused(
    program: tuple[PlanSegment, ...], fused: Any, s: int
) -> None:
    if not isinstance(fused, FusedBuffer):
        raise RuntimeError(
            f"plan mismatch: source rank {s} sent a "
            f"{type(fused).__name__}, not a fused buffer — was the peer "
            "executing a plain data_move?"
        )
    if fused.nsegments != len(program):
        raise RuntimeError(
            f"plan mismatch: fused message from source rank {s} carries "
            f"{fused.nsegments} segment(s) but the unpack program expects "
            f"{len(program)}"
        )
    for i, (header, seg) in enumerate(zip(fused.headers, program)):
        if header.schedule_id != seg.schedule_id:
            raise RuntimeError(
                f"plan mismatch: segment {i} from source rank {s} belongs "
                f"to schedule {header.schedule_id}, expected "
                f"{seg.schedule_id}"
            )
        if header.count != seg.count:
            raise RuntimeError(
                f"schedule mismatch: segment {i} (schedule "
                f"{header.schedule_id}) from source rank {s} carries "
                f"{header.count} elements but expected {seg.count}"
            )


def _note_fusion(universe: Universe, d: int, fused: FusedBuffer) -> None:
    """Observability: per-rank fusion counters + a ``plan:fuse`` trace
    event per fused message (mirroring the fault layer's ``fault:*``
    convention — kind-prefixed events riding the normal trace stream)."""
    proc = universe.process
    metrics = proc.metrics
    metrics.incr("plan_fused_messages")
    metrics.incr("plan_fused_segments", fused.nsegments)
    metrics.incr("plan_alpha_saved", fused.nsegments - 1)
    if proc.trace is not None:
        from repro.vmachine.trace import TraceEvent

        proc.trace.append(
            TraceEvent(
                "plan:fuse", proc.clock, proc.rank, d, TAG_DATA, fused.nbytes,
                phase=proc.phase_path,
            )
        )


# ---------------------------------------------------------------------------
# executors (mirrors of data_move_send / data_move_recv / data_move)
# ---------------------------------------------------------------------------


def _check_arrays(plan: MovePlan, arrays: Sequence[Any], side: str) -> None:
    if len(arrays) != len(plan.schedules):
        raise ValueError(
            f"plan fuses {len(plan.schedules)} schedule(s) but "
            f"{len(arrays)} {side} array(s) were supplied"
        )


def plan_move_send(
    plan: MovePlan,
    src_arrays: Sequence[Any],
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    fence: bool | None = None,
) -> None:
    """Send half of a fused move: one message per destination processor.

    The i-th source array pairs with the i-th member schedule.  Ordering,
    reliability and fence semantics are exactly those of
    :func:`~repro.core.datamove.data_move_send` — the fused payload is
    opaque to the reliable layer, so drops/dups/reorder are handled
    identically.
    """
    if universe.my_src_rank is None:
        raise RuntimeError("plan_move_send called on a non-source processor")
    _check_arrays(plan, src_arrays, "source")
    policy = ExecutorPolicy.coerce(policy)
    rel = universe.reliability
    order = ordered_or_rotated(
        list(plan.send_programs), universe.my_src_rank, universe.dst_size,
        policy,
    )
    for d in order:
        if universe.same_proc_dst(d):
            continue
        program = plan.send_programs[d]
        fused = _pack_fused(plan, program, src_arrays, universe)
        _note_fusion(universe, d, fused)
        if rel is not None:
            rel.send(universe.data_endpoint_to_dst(), d, fused, TAG_DATA)
        else:
            universe.send_to_dst(d, fused, TAG_DATA)
    if rel is not None:
        if fence is None:
            fence = not universe.single_program
        if fence:
            rel.fence(timeout=timeout)
        else:
            rel.flush()


def plan_move_recv(
    plan: MovePlan,
    dst_arrays: Sequence[Any],
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Receive half of a fused move: one message per source processor.

    Under ``OVERLAP`` all fused receives are posted up front and
    completed in arrival order; each message's segments unpack while
    later messages are in flight.  After a message's last segment is
    scattered, its staging buffer returns to the sender's arena —
    unless ``donate=True`` let an eligible segment be adopted as the
    destination's storage, in which case the buffer's lease is severed
    instead of recycled.
    """
    if universe.my_dst_rank is None:
        raise RuntimeError(
            "plan_move_recv called on a non-destination processor"
        )
    _check_arrays(plan, dst_arrays, "destination")
    policy = ExecutorPolicy.coerce(policy)
    rel = universe.reliability
    active = [
        s for s in sorted(plan.recv_programs) if not universe.same_proc_src(s)
    ]
    if rel is not None:
        endpoint = universe.data_endpoint_to_src()
        if policy is ExecutorPolicy.OVERLAP and len(active) > 1:
            remaining = set(active)
            while remaining:
                s, fused = rel.recv_any(
                    endpoint, sorted(remaining), TAG_DATA, timeout=timeout
                )
                remaining.discard(s)
                _unpack_fused(plan, plan.recv_programs[s], dst_arrays,
                              fused, s, universe, donate=donate)
            return
        for s in active:
            fused = rel.recv(endpoint, s, TAG_DATA, timeout=timeout)
            _unpack_fused(plan, plan.recv_programs[s], dst_arrays, fused, s,
                          universe, donate=donate)
        return
    if policy is ExecutorPolicy.OVERLAP and len(active) > 1:
        requests = [universe.irecv_from_src(s, TAG_DATA) for s in active]
        remaining = len(requests)
        while remaining:
            idx, fused = waitany(requests, timeout=timeout)
            remaining -= 1
            s = active[idx]
            _unpack_fused(plan, plan.recv_programs[s], dst_arrays, fused, s,
                          universe, donate=donate)
        return
    for s in active:
        fused = _recv_bounded(universe, s, TAG_DATA, timeout)
        _unpack_fused(plan, plan.recv_programs[s], dst_arrays, fused, s,
                      universe, donate=donate)


def plan_move(
    plan: MovePlan,
    src_arrays: Sequence[Any],
    dst_arrays: Sequence[Any],
    universe: Universe,
    policy: ExecutorPolicy = ExecutorPolicy.ORDERED,
    timeout: float | None = None,
    donate: bool = False,
) -> None:
    """Full fused move (single program), or role dispatch otherwise.

    Intra-processor elements of every member schedule are copied
    directly, buffer-free, exactly as k sequential moves would — fusion
    only changes the *inter*-processor message structure.
    """
    policy = ExecutorPolicy.coerce(policy)
    _check_arrays(plan, src_arrays, "source")
    _check_arrays(plan, dst_arrays, "destination")
    if universe.single_program:
        for sid, sched in enumerate(plan.schedules):
            _local_copies(sched, src_arrays[sid], dst_arrays[sid], universe)
        plan_move_send(plan, src_arrays, universe, policy=policy,
                       timeout=timeout, fence=False)
        plan_move_recv(plan, dst_arrays, universe, policy=policy,
                       timeout=timeout, donate=donate)
        universe.rel_fence(timeout=timeout)
        return
    if universe.my_src_rank is not None:
        plan_move_send(plan, src_arrays, universe, policy=policy,
                       timeout=timeout)
    if universe.my_dst_rank is not None:
        plan_move_recv(plan, dst_arrays, universe, policy=policy,
                       timeout=timeout, donate=donate)
