"""HPF-style Cartesian distributions.

Each dimension of a global array is distributed independently over one
axis of a processor grid with one of the classic HPF patterns::

    BLOCK            contiguous equal blocks (last block may be short)
    CYCLIC           round-robin single elements
    BLOCK_CYCLIC(k)  round-robin blocks of k elements
    COLLAPSED        dimension not distributed (every rank spans it)

All index arithmetic is closed-form and vectorized — this is the reason
regular-library dereferencing is orders of magnitude cheaper than Chaos
translation-table lookups (paper Tables 2 vs 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distrib.base import DistDescriptor, Distribution
from repro.distrib.section import Section

__all__ = [
    "BLOCK",
    "CYCLIC",
    "BLOCK_CYCLIC",
    "COLLAPSED",
    "DimDist",
    "CartesianDist",
    "proc_grid",
]

BLOCK = "block"
CYCLIC = "cyclic"
BLOCK_CYCLIC = "block_cyclic"
COLLAPSED = "collapsed"


def proc_grid(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into a balanced ``ndims``-dimensional grid.

    Mirrors ``MPI_Dims_create``: repeatedly peel the largest prime factor
    onto the currently smallest grid axis, then sort descending so earlier
    (slower-varying) dimensions get the larger factors.
    """
    if nprocs < 1 or ndims < 1:
        raise ValueError("nprocs and ndims must be positive")
    dims = [1] * ndims
    n = nprocs
    factors: list[int] = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class DimDist:
    """Distribution of one dimension over ``procs`` grid slots."""

    kind: str
    size: int
    procs: int
    block: int = 0  # only for BLOCK_CYCLIC

    def __post_init__(self):
        if self.kind not in (BLOCK, CYCLIC, BLOCK_CYCLIC, COLLAPSED):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.size < 0 or self.procs < 1:
            raise ValueError("bad size/procs")
        if self.kind == COLLAPSED and self.procs != 1:
            raise ValueError("COLLAPSED dimensions use exactly one grid slot")
        if self.kind == BLOCK_CYCLIC and self.block < 1:
            raise ValueError("BLOCK_CYCLIC needs a positive block size")

    # -- forward map: global index -> (proc coord, local coord) -------------

    def map(self, g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = np.asarray(g, dtype=np.int64)
        if self.kind == COLLAPSED:
            return np.zeros_like(g), g
        if self.kind == BLOCK:
            b = -(-self.size // self.procs)
            pc = g // b
            return pc, g - pc * b
        if self.kind == CYCLIC:
            return g % self.procs, g // self.procs
        # BLOCK_CYCLIC
        k, p = self.block, self.procs
        blk = g // k
        pc = blk % p
        lc = (blk // p) * k + (g % k)
        return pc, lc

    # -- inverse map ---------------------------------------------------------

    def unmap(self, pc: np.ndarray, lc: np.ndarray) -> np.ndarray:
        """Global index of local coordinate ``lc`` on proc coordinate ``pc``."""
        pc = np.asarray(pc, dtype=np.int64)
        lc = np.asarray(lc, dtype=np.int64)
        if self.kind == COLLAPSED:
            return lc.copy()
        if self.kind == BLOCK:
            b = -(-self.size // self.procs)
            return pc * b + lc
        if self.kind == CYCLIC:
            return lc * self.procs + pc
        k, p = self.block, self.procs
        return (lc // k * p + pc) * k + (lc % k)

    # -- extents -------------------------------------------------------------

    def extent(self, pc: np.ndarray | int) -> np.ndarray | int:
        """Number of indices owned by proc coordinate(s) ``pc``."""
        scalar = np.isscalar(pc)
        pc = np.asarray(pc, dtype=np.int64)
        if self.kind == COLLAPSED:
            out = np.full_like(pc, self.size)
        elif self.kind == BLOCK:
            b = -(-self.size // self.procs)
            out = np.clip(self.size - pc * b, 0, b)
        elif self.kind == CYCLIC:
            out = (self.size - pc + self.procs - 1) // self.procs
            out = np.clip(out, 0, None)
        else:
            k, p = self.block, self.procs
            full = self.size // (k * p)
            rem = self.size - full * k * p
            out = full * k + np.clip(rem - pc * k, 0, k)
        return int(out) if scalar else out

    def block_bounds(self, pc: int) -> tuple[int, int]:
        """Contiguous owned interval ``[lo, hi)`` for BLOCK/COLLAPSED dims.

        Raises for CYCLIC/BLOCK_CYCLIC, whose ownership is not an interval.
        """
        if self.kind == COLLAPSED:
            return 0, self.size
        if self.kind == BLOCK:
            b = -(-self.size // self.procs)
            lo = min(pc * b, self.size)
            return lo, min(lo + b, self.size)
        raise ValueError(f"{self.kind} ownership is not contiguous")


class CartesianDist(Distribution):
    """Per-dimension Cartesian distribution of an n-D global array.

    ``dims[d].procs`` defines the processor-grid axis lengths; their
    product must equal ``nprocs``.  Ranks map to grid coordinates in C
    order (last axis fastest).  Local storage on each rank is its local
    block flattened in C order.
    """

    def __init__(self, dims: tuple[DimDist, ...]):
        if not dims:
            raise ValueError("need at least one dimension")
        self.dims = tuple(dims)
        self.global_shape = tuple(d.size for d in dims)
        self.grid = tuple(d.procs for d in dims)
        self.nprocs = int(np.prod(self.grid))
        self.size = int(np.prod(self.global_shape)) if self.global_shape else 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def block_nd(cls, shape: tuple[int, ...], nprocs: int) -> "CartesianDist":
        """(BLOCK, BLOCK, ...) over a balanced processor grid."""
        grid = proc_grid(nprocs, len(shape))
        return cls(
            tuple(DimDist(BLOCK, n, p) for n, p in zip(shape, grid))
        )

    @classmethod
    def block_1d(cls, shape: tuple[int, ...], nprocs: int, axis: int = 0) -> "CartesianDist":
        """BLOCK along one axis, COLLAPSED elsewhere."""
        dims = []
        for d, n in enumerate(shape):
            if d == axis:
                dims.append(DimDist(BLOCK, n, nprocs))
            else:
                dims.append(DimDist(COLLAPSED, n, 1))
        return cls(tuple(dims))

    # -- grid/rank conversions -------------------------------------------------

    def rank_of_coords(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        return np.ravel_multi_index(coords, self.grid).astype(np.int64)

    def coords_of_rank(self, rank: int) -> tuple[int, ...]:
        return tuple(int(c) for c in np.unravel_index(rank, self.grid))

    def local_shape(self, rank: int) -> tuple[int, ...]:
        coords = self.coords_of_rank(rank)
        return tuple(int(d.extent(c)) for d, c in zip(self.dims, coords))

    def local_size(self, rank: int) -> int:
        return int(np.prod(self.local_shape(rank)))

    def owned_block(self, rank: int) -> tuple[tuple[int, int], ...]:
        """Per-dim contiguous owned intervals (BLOCK/COLLAPSED dims only)."""
        coords = self.coords_of_rank(rank)
        return tuple(d.block_bounds(c) for d, c in zip(self.dims, coords))

    # -- Distribution API ------------------------------------------------------

    def owner_of_flat(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        gidx = np.asarray(gidx, dtype=np.int64)
        multi = np.unravel_index(gidx, self.global_shape)
        pcs, lcs, extents = [], [], []
        for d, g in zip(self.dims, multi):
            pc, lc = d.map(g)
            pcs.append(pc)
            lcs.append(lc)
        ranks = self.rank_of_coords(tuple(pcs))
        # Flat local offset: C-order ravel of local coords against the
        # owning rank's local shape (which varies per element).
        offsets = np.zeros_like(gidx)
        stride = np.ones_like(gidx)
        for d, pc, lc in zip(reversed(self.dims), reversed(pcs), reversed(lcs)):
            offsets = offsets + lc * stride
            stride = stride * d.extent(pc)
        return ranks, offsets

    def local_to_global(self, rank: int, offsets: np.ndarray) -> np.ndarray:
        offsets = np.asarray(offsets, dtype=np.int64)
        coords = self.coords_of_rank(rank)
        lshape = self.local_shape(rank)
        lcs = np.unravel_index(offsets, lshape)
        gcoords = [
            d.unmap(np.full_like(lc, c), lc)
            for d, c, lc in zip(self.dims, coords, lcs)
        ]
        return np.ravel_multi_index(gcoords, self.global_shape).astype(np.int64)

    # -- regular-section dereference (the cheap path) ---------------------------

    def section_map(self, section: Section) -> tuple[np.ndarray, np.ndarray]:
        """Owners and local offsets of every element of ``section``.

        Element order is the section's linearization (row-major over the
        section's index grid): position ``i`` of the returned arrays is
        linearization index ``i``.

        The per-dimension owner computation is closed form (one vector op
        per dimension), so the cost is O(section size) cheap arithmetic
        with no per-element table lookups.
        """
        if len(section.starts) != len(self.dims):
            raise ValueError("section rank mismatch")
        per_dim_pc, per_dim_lc = [], []
        for d in range(len(self.dims)):
            idx = section.dim_indices(d)
            if len(idx) and (idx[-1] >= self.dims[d].size or idx[0] < 0):
                raise IndexError(
                    f"section {section} exceeds global shape {self.global_shape}"
                )
            pc, lc = self.dims[d].map(idx)
            per_dim_pc.append(pc)
            per_dim_lc.append(lc)
        pc_grids = np.meshgrid(*per_dim_pc, indexing="ij")
        lc_grids = np.meshgrid(*per_dim_lc, indexing="ij")
        ranks = self.rank_of_coords(tuple(g.ravel() for g in pc_grids))
        offsets = np.zeros(section.size, dtype=np.int64)
        stride = np.ones(section.size, dtype=np.int64)
        for d in range(len(self.dims) - 1, -1, -1):
            pc = pc_grids[d].ravel()
            lc = lc_grids[d].ravel()
            offsets += lc * stride
            stride *= self.dims[d].extent(pc)
        return ranks, offsets

    # -- descriptor ------------------------------------------------------------

    def descriptor(self) -> DistDescriptor:
        payload = tuple(
            (d.kind, d.size, d.procs, d.block) for d in self.dims
        )
        # A few words per dimension — compact, cheap to exchange.
        return DistDescriptor(kind="cartesian", payload=payload, nbytes=32 * len(self.dims))

    @classmethod
    def from_descriptor_payload(cls, payload) -> "CartesianDist":
        return cls(
            tuple(DimDist(kind, size, procs, block) for kind, size, procs, block in payload)
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, CartesianDist) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{d.kind}({d.size}/{d.procs}{',' + str(d.block) if d.kind == BLOCK_CYCLIC else ''})"
            for d in self.dims
        )
        return f"CartesianDist({parts})"
