"""Regular array sections (Fortran-90 triplet notation).

A :class:`Section` is the ``start:stop:step`` rectangle used as the Region
type of the regular libraries (HPF, Multiblock Parti): ``A[l1:u1:s1,
l2:u2:s2, ...]`` with zero-based, exclusive-stop Python conventions.

The linearization of a section is its row-major (C-order) element order,
matching the paper's definition ("if the Region is an array section, and
the array is laid out in row major order ... the linearization of the
section is the row major ordering of the elements of the regular
section").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Section"]


@dataclass(frozen=True)
class Section:
    """A rectangular strided section of an n-dimensional index space."""

    starts: tuple[int, ...]
    stops: tuple[int, ...]
    steps: tuple[int, ...]

    def __post_init__(self):
        if not (len(self.starts) == len(self.stops) == len(self.steps)):
            raise ValueError("starts/stops/steps must have equal length")
        for lo, hi, st in zip(self.starts, self.stops, self.steps):
            if st <= 0:
                raise ValueError(f"step must be positive, got {st}")
            if lo < 0 or hi < lo:
                raise ValueError(f"bad bounds [{lo}:{hi}]")

    @classmethod
    def from_slices(cls, slices: tuple[slice, ...], shape: tuple[int, ...]) -> "Section":
        """Build from Python slices resolved against ``shape``."""
        starts, stops, steps = [], [], []
        for sl, n in zip(slices, shape):
            lo, hi, st = sl.indices(n)
            if st <= 0:
                raise ValueError("negative/zero steps are not supported")
            starts.append(lo)
            stops.append(hi)
            steps.append(st)
        return cls(tuple(starts), tuple(stops), tuple(steps))

    @classmethod
    def full(cls, shape: tuple[int, ...]) -> "Section":
        """The section covering the whole index space."""
        return cls(tuple(0 for _ in shape), tuple(shape), tuple(1 for _ in shape))

    @property
    def ndim(self) -> int:
        return len(self.starts)

    @property
    def counts(self) -> tuple[int, ...]:
        """Number of selected indices per dimension."""
        return tuple(
            max(0, -(-(hi - lo) // st))
            for lo, hi, st in zip(self.starts, self.stops, self.steps)
        )

    @property
    def size(self) -> int:
        """Total number of selected elements."""
        n = 1
        for c in self.counts:
            n *= c
        return n

    def dim_indices(self, d: int) -> np.ndarray:
        """Global indices selected along dimension ``d`` (ascending)."""
        return np.arange(self.starts[d], self.stops[d], self.steps[d])

    def global_flat(self, shape: tuple[int, ...], order: str = "C") -> np.ndarray:
        """Flat global indices of all elements, in linearization order.

        ``shape`` is the global array shape the section indexes into
        (global storage is always C/flat-major here); ``order`` selects
        the *enumeration* order of the section's elements: ``"C"``
        (row-major, last dimension fastest — C arrays, the default) or
        ``"F"`` (column-major, first dimension fastest — what an HPF/
        Fortran library's linearization naturally is).
        O(size) memory; used by adapters and the test oracle.
        """
        if len(shape) != self.ndim:
            raise ValueError("shape rank mismatch")
        if order not in ("C", "F"):
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        per_dim = [self.dim_indices(d) for d in range(self.ndim)]
        grids = np.meshgrid(*per_dim, indexing="ij") if per_dim else []
        if not grids:
            return np.zeros(0, dtype=np.int64)
        return np.ravel_multi_index(
            [g.ravel(order=order) for g in grids], shape
        ).astype(np.int64)

    def lin_to_multi(
        self, lin: np.ndarray, order: str = "C"
    ) -> tuple[np.ndarray, ...]:
        """Per-dim *global* indices of the given linearization positions."""
        lin = np.asarray(lin, dtype=np.int64)
        if order == "C":
            sub = np.unravel_index(lin, self.counts)
        elif order == "F":
            # First dimension fastest: peel coordinates low-dim first.
            sub = []
            rest = lin
            for c in self.counts:
                sub.append(rest % c)
                rest = rest // c
            sub = tuple(sub)
        else:
            raise ValueError(f"order must be 'C' or 'F', got {order!r}")
        return tuple(
            self.starts[d] + sub[d] * self.steps[d] for d in range(self.ndim)
        )

    def intersect_block(
        self, lows: tuple[int, ...], highs: tuple[int, ...]
    ) -> "Section | None":
        """Intersect with the axis-aligned block ``[lows, highs)``.

        Returns the sub-section of *this* section that falls inside the
        block (same steps), or ``None`` if empty.  This closed-form
        per-dimension intersection is what makes Multiblock Parti's native
        regular-section schedules cheap (paper Table 5).
        """
        starts, stops = [], []
        for d in range(self.ndim):
            lo, hi, st = self.starts[d], self.stops[d], self.steps[d]
            blo, bhi = lows[d], highs[d]
            # First selected index >= blo: ceil((blo - lo)/st) steps in.
            if blo > lo:
                k = -(-(blo - lo) // st)
                new_lo = lo + k * st
            else:
                new_lo = lo
            new_hi = min(hi, bhi)
            if new_lo >= new_hi:
                return None
            starts.append(new_lo)
            stops.append(new_hi)
        return Section(tuple(starts), tuple(stops), tuple(self.steps))

    def lin_offset_of(self, other: "Section") -> np.ndarray | None:
        """Linearization positions (within *this* section) of every element
        of ``other``, where ``other`` must be a sub-section with the same
        steps (as produced by :meth:`intersect_block`).

        Returned in ``other``'s own linearization order.
        """
        per_dim = []
        for d in range(self.ndim):
            idx = other.dim_indices(d)
            rel = idx - self.starts[d]
            if ((rel % self.steps[d]) != 0).any():
                return None
            pos = rel // self.steps[d]
            if (pos < 0).any() or (pos >= self.counts[d]).any():
                return None
            per_dim.append(pos)
        grids = np.meshgrid(*per_dim, indexing="ij")
        return np.ravel_multi_index(
            [g.ravel() for g in grids], self.counts
        ).astype(np.int64)

    def __repr__(self) -> str:
        parts = ",".join(
            f"{lo}:{hi}:{st}"
            for lo, hi, st in zip(self.starts, self.stops, self.steps)
        )
        return f"Section[{parts}]"
