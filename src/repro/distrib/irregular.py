"""Irregular distributions: explicit owner maps.

The Chaos library distributes one-dimensional arrays pointwise: a
*translation table* records, for every global index, the owning processor
and the local offset there.  :class:`IrregularDist` is the pure owner-map
part of that machinery (the Chaos analogue adds replicated vs. paged table
storage and the per-lookup cost accounting on top).
"""

from __future__ import annotations

import numpy as np

from repro.distrib.base import DistDescriptor, Distribution

__all__ = ["IrregularDist"]


class IrregularDist(Distribution):
    """Distribution defined by an explicit per-element owner array.

    Local offsets are assigned by ascending global index within each owner
    (the standard Chaos convention: a processor stores its elements in
    global-index order).
    """

    def __init__(self, owners: np.ndarray, nprocs: int):
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError("owner map must be one-dimensional")
        if len(owners) and (owners.min() < 0 or owners.max() >= nprocs):
            raise ValueError("owner rank out of range")
        self.owners = owners
        self.nprocs = nprocs
        self.size = len(owners)
        # offsets[g] = position of g within its owner's local storage
        self._offsets = np.zeros(self.size, dtype=np.int64)
        self._counts = np.bincount(owners, minlength=nprocs).astype(np.int64)
        # Stable per-owner running count, vectorized: sort by owner (stable),
        # number within each group, scatter back.
        order = np.argsort(owners, kind="stable")
        grouped = owners[order]
        within = np.arange(self.size, dtype=np.int64)
        if self.size:
            group_starts = np.zeros(self.size, dtype=np.int64)
            new_group = np.empty(self.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = grouped[1:] != grouped[:-1]
            starts = within[new_group]
            group_id = np.cumsum(new_group) - 1
            group_starts = starts[group_id]
            self._offsets[order] = within - group_starts
        # local -> global lookup: for each rank, its global indices ascending
        self._local_to_global: list[np.ndarray] = [
            np.flatnonzero(owners == r).astype(np.int64) for r in range(nprocs)
        ]

    @classmethod
    def from_local_lists(cls, locals_: list[np.ndarray], size: int) -> "IrregularDist":
        """Build from each rank's list of owned global indices.

        Within a rank, storage order follows ascending global index
        regardless of the input order (Chaos convention).
        """
        owners = np.full(size, -1, dtype=np.int64)
        for r, gl in enumerate(locals_):
            gl = np.asarray(gl, dtype=np.int64)
            if (owners[gl] != -1).any():
                raise ValueError("element assigned to two owners")
            owners[gl] = r
        if (owners == -1).any():
            raise ValueError("some elements have no owner")
        return cls(owners, len(locals_))

    # -- Distribution API ------------------------------------------------------

    def owner_of_flat(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        gidx = np.asarray(gidx, dtype=np.int64)
        return self.owners[gidx], self._offsets[gidx]

    def offset_within_owner(self, gidx: np.ndarray) -> np.ndarray:
        """Local offset of each global index on its owning rank."""
        return self._offsets[np.asarray(gidx, dtype=np.int64)]

    def local_size(self, rank: int) -> int:
        return int(self._counts[rank])

    def local_to_global(self, rank: int, offsets: np.ndarray) -> np.ndarray:
        return self._local_to_global[rank][np.asarray(offsets, dtype=np.int64)]

    def descriptor(self) -> DistDescriptor:
        # The owner map is as large as the data itself — this is exactly why
        # the duplication schedule method is impractical across programs
        # when one side is Chaos (paper section 5.1).
        return DistDescriptor(
            kind="irregular",
            payload=(self.owners.copy(), self.nprocs),
            nbytes=int(self.owners.nbytes),
        )

    @classmethod
    def from_descriptor_payload(cls, payload) -> "IrregularDist":
        owners, nprocs = payload
        return cls(owners, nprocs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IrregularDist)
            and self.nprocs == other.nprocs
            and np.array_equal(self.owners, other.owners)
        )

    def __hash__(self) -> int:
        return hash((self.nprocs, self.size, int(self.owners.sum())))

    def __repr__(self) -> str:
        return f"IrregularDist(size={self.size}, nprocs={self.nprocs})"
