"""Distribution protocol.

A distribution maps the ``size`` global elements of a data structure onto
``nprocs`` ranks, giving each element a unique ``(owner rank, local
offset)`` pair, where local offsets index the rank's flat local storage
``0 .. local_size(rank)-1``.

All mapping methods are vectorized: they accept and return NumPy integer
arrays.  Multidimensional structures are addressed here by *flat* global
index (C order); the Cartesian distribution does the multi-index
arithmetic internally.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Distribution", "DistDescriptor", "register_descriptor_kind"]


@dataclass(frozen=True)
class DistDescriptor:
    """Exchangeable description of a distribution.

    This is what the *duplication* schedule method ships between programs
    (paper section 5.1): a compact closed-form record for regular
    distributions, or the full owner map for irregular ones.  ``nbytes``
    is the size charged to the transport when the descriptor is exchanged
    — the reason duplication "is not practical ... when at least one of
    the programs does not have a compact data descriptor (e.g. a Chaos
    translation table, which is the same size as the data array)".
    """

    kind: str
    payload: Any
    nbytes: int

    def materialize(self) -> "Distribution":
        """Rebuild a full :class:`Distribution` from the descriptor.

        Distribution kinds register themselves with
        :func:`register_descriptor_kind`, so higher layers (e.g. HPF's
        aligned distributions) can add kinds without this module knowing
        about them.
        """
        # Built-in kinds register lazily (importing them here at module
        # load would be circular); external kinds may already be present.
        if self.kind not in _DESCRIPTOR_KINDS:
            from repro.distrib.cartesian import CartesianDist
            from repro.distrib.irregular import IrregularDist

            _DESCRIPTOR_KINDS.setdefault(
                "cartesian", CartesianDist.from_descriptor_payload
            )
            _DESCRIPTOR_KINDS.setdefault(
                "irregular", IrregularDist.from_descriptor_payload
            )
        try:
            factory = _DESCRIPTOR_KINDS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown descriptor kind {self.kind!r}; "
                f"known: {sorted(_DESCRIPTOR_KINDS)}"
            ) from None
        return factory(self.payload)


#: registry of descriptor kind -> payload factory
_DESCRIPTOR_KINDS: dict[str, Any] = {}


def register_descriptor_kind(kind: str, factory) -> None:
    """Register a :class:`DistDescriptor` kind's materialization factory."""
    _DESCRIPTOR_KINDS[kind] = factory


class Distribution(abc.ABC):
    """Abstract owner/offset map for one distributed data structure."""

    #: number of ranks the structure is distributed over
    nprocs: int
    #: total number of global elements
    size: int

    @abc.abstractmethod
    def owner_of_flat(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Owning rank and flat local offset of each flat global index.

        Parameters
        ----------
        gidx:
            integer array of flat global indices (any shape).

        Returns
        -------
        (ranks, offsets):
            integer arrays of the same shape as ``gidx``.
        """

    @abc.abstractmethod
    def local_size(self, rank: int) -> int:
        """Number of elements stored on ``rank``."""

    @abc.abstractmethod
    def local_to_global(self, rank: int, offsets: np.ndarray) -> np.ndarray:
        """Flat global indices of the given local offsets on ``rank``."""

    @abc.abstractmethod
    def descriptor(self) -> DistDescriptor:
        """Exchangeable descriptor (see :class:`DistDescriptor`)."""

    # -- helpers shared by implementations ----------------------------------

    def owned_global(self, rank: int) -> np.ndarray:
        """All flat global indices owned by ``rank`` (ascending local offset)."""
        return self.local_to_global(rank, np.arange(self.local_size(rank)))

    def check_valid(self) -> None:
        """Exhaustively verify the owner map is a partition (test helper).

        O(size) — intended for tests on small distributions, not for hot
        paths.
        """
        gidx = np.arange(self.size)
        ranks, offsets = self.owner_of_flat(gidx)
        if ranks.min(initial=0) < 0 or ranks.max(initial=0) >= self.nprocs:
            raise AssertionError("owner rank out of range")
        for r in range(self.nprocs):
            mask = ranks == r
            n = self.local_size(r)
            offs = offsets[mask]
            if len(offs) != n:
                raise AssertionError(
                    f"rank {r}: {len(offs)} elements mapped but local_size={n}"
                )
            if n and (np.sort(offs) != np.arange(n)).any():
                raise AssertionError(f"rank {r}: local offsets are not a bijection")
            back = self.local_to_global(r, offs)
            if (back != gidx[mask]).any():
                raise AssertionError(f"rank {r}: local_to_global mismatch")
