"""Data-distribution descriptors.

Pure, vectorized index arithmetic shared by all the data parallel library
analogues.  Nothing in this subpackage touches the cost model or the
communicator: a :class:`~repro.distrib.base.Distribution` answers "which
rank owns global element g, and at which local offset?" as NumPy array
operations, and the runtime libraries layer cost accounting and messaging
on top.

- :mod:`repro.distrib.cartesian` — HPF-style per-dimension BLOCK /
  CYCLIC / BLOCK_CYCLIC(k) / COLLAPSED distributions over a processor
  grid (used by the HPF runtime and Multiblock Parti analogues);
- :mod:`repro.distrib.irregular` — explicit owner maps (used by the
  Chaos analogue's translation tables and the pC++ collection).
"""

from repro.distrib.base import Distribution, DistDescriptor
from repro.distrib.cartesian import (
    BLOCK,
    BLOCK_CYCLIC,
    COLLAPSED,
    CYCLIC,
    CartesianDist,
    DimDist,
    proc_grid,
)
from repro.distrib.irregular import IrregularDist
from repro.distrib.section import Section

__all__ = [
    "Section",
    "Distribution",
    "DistDescriptor",
    "DimDist",
    "BLOCK",
    "CYCLIC",
    "BLOCK_CYCLIC",
    "COLLAPSED",
    "CartesianDist",
    "proc_grid",
    "IrregularDist",
]
