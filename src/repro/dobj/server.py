"""Server side of the distributed-object layer.

A server program constructs :class:`ParallelObject` instances (whose state
includes distributed arrays and whose methods are SPMD across the server's
processors), then enters :func:`serve_objects` — an ORB-style dispatch
loop.  Control requests arrive at the server's rank 0 and are broadcast so
every rank executes each operation collectively; bulk data moves through
Meta-Chaos bindings.
"""

from __future__ import annotations

import abc

from repro.core.coupling import CoupledExchange, coupled_universe
from repro.core.schedule import ScheduleMethod
from repro.dobj.protocol import TAG_CONTROL, BoundArray, Reply, SlotTable
from repro.vmachine.program import ProgramContext

__all__ = ["ParallelObject", "serve_objects"]


class ParallelObject(abc.ABC):
    """Base class for server-side parallel objects.

    Subclasses hold distributed arrays and define SPMD methods (plain
    methods executed by every server rank collectively).  Every method
    name not starting with ``_`` is remotely callable.  Arrays a client
    may bind to are published by :meth:`export_array`.
    """

    @abc.abstractmethod
    def export_array(self, attr: str):
        """Return ``(library_name, array, set_of_regions)`` for ``attr``.

        Raise ``KeyError`` for unknown attributes; the error travels back
        to the client as a failed reply.
        """

    def _callable(self, method: str) -> bool:
        return not method.startswith("_") and callable(getattr(self, method, None))


def serve_objects(
    ctx: ProgramContext,
    client: str,
    objects: dict[str, ParallelObject],
) -> int:
    """Run the object-server dispatch loop until the client shuts it down.

    Collective over the server program.  Returns the number of requests
    served (for monitoring/tests) — the terminating ``shutdown`` request
    is not counted as served work.
    """
    comm = ctx.comm
    ic = ctx.peer(client)
    slots = SlotTable()
    bindings: dict[int, BoundArray] = {}
    served = 0

    while True:
        request = None
        if comm.rank == 0:
            request = ic.recv(0, TAG_CONTROL)
        request = comm.bcast(request, root=0)

        if request.kind == "shutdown":
            _reply(comm, ic, Reply(ok=True))
            return served
        served += 1

        if request.kind == "oneway":
            # Fire-and-forget invocation (CORBA 'oneway'): execute but
            # *never* reply, success or failure — the client is already
            # gone, and an unsolicited Reply would sit in its mailbox and
            # desynchronize every later request/reply pairing on the
            # control channel.  Failures are counted, not reported.
            try:
                obj = _lookup(objects, request.obj)
                if obj._callable(request.method):
                    getattr(obj, request.method)(*request.args)
            except Exception:  # noqa: BLE001 - deliberately silent
                comm.process.metrics.incr("dobj_oneway_errors")
            continue

        try:
            if request.kind == "call":
                obj = _lookup(objects, request.obj)
                if not obj._callable(request.method):
                    raise AttributeError(
                        f"object {request.obj!r} has no remote method "
                        f"{request.method!r}"
                    )
                value = getattr(obj, request.method)(*request.args)
                _reply(comm, ic, Reply(ok=True, value=value))

            elif request.kind == "bind":
                # Validate *before* replying: once the positive reply is
                # out, both programs commit to the collective schedule
                # computation, so any failure must be detected first
                # (otherwise the client would hang waiting for a peer
                # that bailed out).
                obj = _lookup(objects, request.obj)
                lib, array, sor = obj.export_array(request.attr)
                binding_id = slots.acquire()
                _reply(comm, ic, Reply(ok=True, binding=binding_id))
                universe = coupled_universe(ctx, client, "dst")
                sched = _bind_schedule(universe, lib, array, sor)
                bindings[binding_id] = BoundArray(
                    binding_id=binding_id,
                    obj=request.obj,
                    attr=request.attr,
                    exchange=CoupledExchange(universe, sched),
                    local_array=array,
                )

            elif request.kind == "unbind":
                b = _binding(bindings, request.binding)
                del bindings[b.binding_id]
                slots.release(b.binding_id)
                _reply(comm, ic, Reply(ok=True))

            elif request.kind == "push":
                b = _binding(bindings, request.binding)
                b.exchange.push(b.local_array)
                _reply(comm, ic, Reply(ok=True))

            elif request.kind == "pull":
                b = _binding(bindings, request.binding)
                b.exchange.pull(b.local_array)
                _reply(comm, ic, Reply(ok=True))

            else:
                raise ValueError(f"unknown request kind {request.kind!r}")

        except Exception as exc:  # noqa: BLE001 - reported to the client
            _reply(comm, ic, Reply(ok=False, error=f"{type(exc).__name__}: {exc}"))


def _bind_schedule(universe, lib, array, sor):
    """Server half of the bind-time schedule computation.

    The client side concurrently calls its half; the *source* library's
    identity is irrelevant to the destination group under the cooperation
    method (only the destination's own dereferencing happens here), so
    the destination library name stands in for it and the protocol does
    not need to ship it.
    """
    from repro.core.schedule import build_schedule

    return build_schedule(
        universe,
        lib, None, None,  # source side lives in the client program
        lib, array, sor,
        method=ScheduleMethod.COOPERATION,
    )


def _binding(bindings: dict[int, BoundArray], slot: int) -> BoundArray:
    try:
        return bindings[slot]
    except KeyError:
        raise KeyError(
            f"binding {slot} is not live (unbound or never bound); "
            f"live bindings: {sorted(bindings)}"
        ) from None


def _lookup(objects: dict[str, ParallelObject], name: str) -> ParallelObject:
    try:
        return objects[name]
    except KeyError:
        raise KeyError(
            f"no object {name!r} exported; available: {sorted(objects)}"
        ) from None


def _reply(comm, ic, reply: Reply) -> None:
    if comm.rank == 0:
        ic.send(0, reply, TAG_CONTROL)
