"""Distributed data parallel objects (the paper's stated future work).

Section 6: "we ... are currently studying ways to incorporate distributed
data parallel objects into the CORBA object model, so that data parallel
programs could interoperate with distributed object systems.  Meta-Chaos
could be used as the underlying mechanism for such an extension."

This subpackage builds that extension on top of the repository's
Meta-Chaos core:

- a *server* program exports named **parallel objects** whose state
  includes distributed arrays (any registered library) and whose methods
  run SPMD across the server's processors
  (:class:`~repro.dobj.server.ParallelObject`,
  :func:`~repro.dobj.server.serve_objects`);
- a *client* program holds :class:`~repro.dobj.client.RemoteObject`
  proxies: small control messages (method invocation, binding) travel as
  an ORB-style request/reply protocol between the programs' rank 0s,
  while **bulk array arguments and results move directly between the
  distributed memories** through Meta-Chaos schedules established once at
  bind time — the CORBA-missing piece the paper points at.

See ``examples/image_server.py`` for the satellite-image-database
scenario from the paper's introduction, rebuilt on this layer.
"""

from repro.dobj.protocol import BoundArray, Request, Reply, SlotTable
from repro.dobj.server import ParallelObject, serve_objects
from repro.dobj.client import Broker, RemoteError, RemoteObject, connect

__all__ = [
    "BoundArray",
    "Request",
    "Reply",
    "SlotTable",
    "ParallelObject",
    "serve_objects",
    "Broker",
    "RemoteError",
    "RemoteObject",
    "connect",
]
