"""Client side of the distributed-object layer.

A client program :func:`connect`\\ s to a server program and obtains
:class:`RemoteObject` proxies.  All proxy operations are *collective over
the client program* (every client rank calls them together): rank 0
carries the control conversation, results are broadcast, and bind/push/
pull involve every rank because the bulk data is distributed on both
sides.
"""

from __future__ import annotations

from typing import Any

from repro.core.coupling import CoupledExchange, coupled_universe
from repro.core.schedule import ScheduleMethod, build_schedule
from repro.core.setofregions import SetOfRegions
from repro.dobj.protocol import TAG_CONTROL, BoundArray, Reply, Request
from repro.vmachine.program import ProgramContext

__all__ = ["RemoteError", "Broker", "RemoteObject", "connect"]


class RemoteError(RuntimeError):
    """A server-side failure, re-raised on every client rank."""


class Broker:
    """Connection to one object server program."""

    def __init__(self, ctx: ProgramContext, server: str):
        self.ctx = ctx
        self.server = server
        self._ic = ctx.peer(server)
        self._bindings = 0

    def object(self, name: str) -> "RemoteObject":
        """Proxy for the server's object ``name`` (no round trip)."""
        return RemoteObject(self, name)

    def unbind(self, binding: BoundArray) -> None:
        """Release ``binding``'s server-side slot (collective).

        The slot becomes reusable by the next ``bind`` on both ends, so a
        client cycling through bindings keeps the server's table bounded.
        Equivalent to ``binding.close()``.
        """
        if binding.closed:
            return
        self._transact(Request(kind="unbind", binding=binding.binding_id))
        binding.closed = True
        self._bindings -= 1

    def shutdown(self) -> None:
        """Stop the server's dispatch loop (collective)."""
        self._transact(Request(kind="shutdown"))

    # -- internals ---------------------------------------------------------

    def _transact(self, request: Request) -> Reply:
        """Collective request/reply: rank 0 talks, everyone learns."""
        comm = self.ctx.comm
        reply = None
        if comm.rank == 0:
            self._ic.send(0, request, TAG_CONTROL)
            reply = self._ic.recv(0, TAG_CONTROL)
        reply = comm.bcast(reply, root=0)
        if not reply.ok:
            raise RemoteError(reply.error)
        return reply


class RemoteObject:
    """Proxy for one named parallel object on the server."""

    def __init__(self, broker: Broker, name: str):
        self.broker = broker
        self.name = name

    def call(self, method: str, *args: Any) -> Any:
        """Invoke an SPMD method; returns the (replicated) result.

        ``args`` must be small replicated scalars/tuples — bulk data goes
        through bindings, never through the control channel.
        """
        return self.broker._transact(
            Request(kind="call", obj=self.name, method=method, args=args)
        ).value

    def call_oneway(self, method: str, *args: Any) -> None:
        """Fire-and-forget invocation (CORBA 'oneway' semantics).

        No reply, no error propagation: the request costs one control
        message and the client continues immediately.  Unknown methods
        are silently dropped by the server — use :meth:`call` when you
        need the acknowledgement.
        """
        comm = self.broker.ctx.comm
        if comm.rank == 0:
            self.broker._ic.send(
                0,
                Request(kind="oneway", obj=self.name, method=method, args=args),
                TAG_CONTROL,
            )

    def bind(
        self,
        attr: str,
        local_lib: str,
        local_array: Any,
        local_sor: SetOfRegions,
    ) -> BoundArray:
        """Establish a bulk-data path to the object's exported array.

        Collective: the request makes every server rank enter its half of
        the Meta-Chaos schedule computation while the client ranks run
        theirs here.  The returned binding's ``push``/``pull`` reuse the
        schedule for any number of transfers.
        """
        ctx = self.broker.ctx
        # Phase 1: the server validates the export and acknowledges (or
        # refuses) *before* either side commits to the collective schedule
        # computation — a refused bind must not leave the client hanging.
        reply = self.broker._transact(
            Request(kind="bind", obj=self.name, attr=attr)
        )
        # Phase 2: both programs build the schedule together.
        universe = coupled_universe(ctx, self.broker.server, "src")
        sched = build_schedule(
            universe,
            local_lib, local_array, local_sor,
            local_lib, None, None,  # destination lives in the server
            method=ScheduleMethod.COOPERATION,
        )
        self.broker._bindings += 1
        return BoundArray(
            binding_id=reply.binding,
            obj=self.name,
            attr=attr,
            exchange=CoupledExchange(universe, sched),
            local_array=local_array,
            owner=self.broker,
        )

    def push(self, binding: BoundArray, local_array: Any | None = None) -> None:
        """Copy the client's array into the object's array (collective)."""
        ctx = self.broker.ctx
        _check_open(binding, "push")
        if ctx.rank == 0:
            self.broker._ic.send(
                0, Request(kind="push", binding=binding.binding_id), TAG_CONTROL
            )
        binding.exchange.push(local_array if local_array is not None else binding.local_array)
        self._finish()

    def pull(self, binding: BoundArray, local_array: Any | None = None) -> None:
        """Copy the object's array back into the client's (collective)."""
        ctx = self.broker.ctx
        _check_open(binding, "pull")
        if ctx.rank == 0:
            self.broker._ic.send(
                0, Request(kind="pull", binding=binding.binding_id), TAG_CONTROL
            )
        binding.exchange.pull(local_array if local_array is not None else binding.local_array)
        self._finish()

    def _finish(self) -> None:
        comm = self.broker.ctx.comm
        reply = None
        if comm.rank == 0:
            reply = self.broker._ic.recv(0, TAG_CONTROL)
        reply = comm.bcast(reply, root=0)
        if not reply.ok:
            raise RemoteError(reply.error)


def _check_open(binding: BoundArray, op: str) -> None:
    if binding.closed:
        raise RuntimeError(
            f"cannot {op} on closed binding {binding.binding_id} "
            f"({binding.obj}.{binding.attr}): the server-side slot has "
            "been released"
        )


def connect(ctx: ProgramContext, server: str) -> Broker:
    """Connect this client program to the named server program."""
    return Broker(ctx, server)
