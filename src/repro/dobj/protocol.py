"""Wire protocol of the distributed-object layer.

Control traffic is tiny and structured: :class:`Request` records travel
from the client's rank 0 to the server's rank 0, are broadcast inside the
server program (every server rank participates in every operation — the
methods are SPMD), and a :class:`Reply` returns.  Bulk data never rides
this channel: array arguments/results go through Meta-Chaos schedules
referenced by binding id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Request", "Reply", "BoundArray", "TAG_CONTROL"]

TAG_CONTROL = (1 << 21) + 100


@dataclass(frozen=True)
class Request:
    """One client -> server control message."""

    kind: str            # "call" | "bind" | "push" | "pull" | "shutdown"
    obj: str = ""        # target object name
    method: str = ""     # for "call": SPMD method name
    args: tuple = ()     # for "call": scalar (picklable, replicated) args
    attr: str = ""       # for "bind": exported array attribute
    binding: int = -1    # for "push"/"pull": binding id

    @property
    def nbytes(self) -> int:
        # Control messages are small and fixed-cost on the wire.
        return 64 + 16 * len(self.args)


@dataclass(frozen=True)
class Reply:
    """Server -> client response to one request."""

    ok: bool
    value: Any = None
    error: str = ""
    binding: int = -1

    @property
    def nbytes(self) -> int:
        return 64


@dataclass
class BoundArray:
    """One established client<->server bulk-data path.

    Created by ``RemoteObject.bind``: the client supplies its local
    distributed array and region set; the server supplies the object's
    exported array.  The stored Meta-Chaos schedule (client = source) is
    symmetric, so the same binding serves ``push`` (client -> object) and
    ``pull`` (object -> client).
    """

    binding_id: int
    obj: str
    attr: str
    exchange: Any  # CoupledExchange
    local_array: Any = field(default=None)
