"""Wire protocol of the distributed-object layer.

Control traffic is tiny and structured: :class:`Request` records travel
from the client's rank 0 to the server's rank 0, are broadcast inside the
server program (every server rank participates in every operation — the
methods are SPMD), and a :class:`Reply` returns.  Bulk data never rides
this channel: array arguments/results go through Meta-Chaos schedules
referenced by binding id.

Binding ids are *slots*: the server assigns the lowest free slot at
``bind`` time and ``unbind`` returns it to the free list, so long-lived
clients that cycle through bindings reuse a bounded table instead of
growing it without limit.  Both sides run the same :class:`SlotTable`
discipline, which keeps their id assignment in lockstep without shipping
tables around.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Request", "Reply", "BoundArray", "SlotTable", "TAG_CONTROL"]

TAG_CONTROL = (1 << 21) + 100


@dataclass(frozen=True)
class Request:
    """One client -> server control message."""

    kind: str            # "call" | "bind" | "push" | "pull" | "unbind" | "shutdown"
    obj: str = ""        # target object name
    method: str = ""     # for "call": SPMD method name
    args: tuple = ()     # for "call": scalar (picklable, replicated) args
    attr: str = ""       # for "bind": exported array attribute
    binding: int = -1    # for "push"/"pull"/"unbind": binding slot

    @property
    def nbytes(self) -> int:
        # Fixed control envelope plus the *real* pickled size of the
        # arguments: a client shipping a large replicated tuple pays for
        # it in the cost model instead of a flat 16-bytes-per-arg
        # underestimate.  Cached — Request is frozen, so the size is too.
        cached = self.__dict__.get("_nbytes")
        if cached is None:
            cached = 64
            if self.args:
                cached += len(pickle.dumps(self.args, protocol=4))
            object.__setattr__(self, "_nbytes", cached)
        return cached


@dataclass(frozen=True)
class Reply:
    """Server -> client response to one request."""

    ok: bool
    value: Any = None
    error: str = ""
    binding: int = -1

    @property
    def nbytes(self) -> int:
        return 64


class SlotTable:
    """Lowest-free-slot id allocator with deterministic reuse.

    Used on both ends of the protocol: because the server assigns slots
    in request order and frees them in ``unbind`` order, a client (or the
    coupling service's gateway) running the same discipline over the same
    op stream mirrors the server's table exactly.
    """

    def __init__(self) -> None:
        self._free: list[int] = []
        self._next = 0
        #: largest number of simultaneously live slots ever observed
        self.high_water = 0

    def acquire(self) -> int:
        if self._free:
            # Lowest slot first: deterministic and keeps the table dense.
            slot = self._free.pop(0)
        else:
            slot = self._next
            self._next += 1
        self.high_water = max(self.high_water, self.live)
        return slot

    def release(self, slot: int) -> None:
        if not 0 <= slot < self._next or slot in self._free:
            raise KeyError(f"slot {slot} is not live")
        # Insertion keeps the free list sorted so acquire() pops the
        # lowest slot without a scan.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid] < slot:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, slot)

    def preview(self, k: int) -> list[int]:
        """The ``k`` slot ids the next ``k`` :meth:`acquire` calls would
        return, without mutating the table.

        The coupling service's bind negotiation answers clients *before*
        the collective phase in which both programs actually acquire the
        slots, so the server previews its assignment to put authoritative
        ids on the wire while keeping all mutation in one ordered phase.
        """
        out = self._free[:k]
        n = self._next
        while len(out) < k:
            out.append(n)
            n += 1
        return out

    @property
    def live(self) -> int:
        """Number of slots currently allocated."""
        return self._next - len(self._free)

    @property
    def capacity(self) -> int:
        """Size of the underlying table (live + free slots)."""
        return self._next

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < self._next and slot not in self._free


@dataclass
class BoundArray:
    """One established client<->server bulk-data path.

    Created by ``RemoteObject.bind``: the client supplies its local
    distributed array and region set; the server supplies the object's
    exported array.  The stored Meta-Chaos schedule (client = source) is
    symmetric, so the same binding serves ``push`` (client -> object) and
    ``pull`` (object -> client).

    ``close()`` releases the server-side binding slot (collective over
    the client program) so long-lived clients can cycle through bindings
    without growing the server's table; closed bindings refuse further
    transfers.
    """

    binding_id: int
    obj: str
    attr: str
    exchange: Any  # CoupledExchange
    local_array: Any = field(default=None)
    #: set on client-side bindings so close() can reach the broker
    owner: Any = field(default=None, repr=False, compare=False)
    closed: bool = field(default=False, compare=False)

    def close(self) -> None:
        """Release the server-side slot (collective; client-side only)."""
        if self.closed:
            return
        if self.owner is None:
            raise RuntimeError(
                "this BoundArray has no owning broker (server-side bindings "
                "are closed by the client's unbind request)"
            )
        self.owner.unbind(self)
