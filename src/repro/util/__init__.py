"""Cross-library utilities built on the Meta-Chaos core.

- :mod:`repro.util.checkpoint` — gather/scatter any library's distributed
  data through its *canonical form* (the virtual linearization), e.g. for
  checkpointing, I/O staging, or feeding sequential tools.
"""

from repro.util.checkpoint import gather_canonical, scatter_canonical

__all__ = ["gather_canonical", "scatter_canonical"]
