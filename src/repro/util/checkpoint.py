"""Canonical-form gather/scatter (checkpointing through the linearization).

The paper's linearization "organizes data structures into a canonical
form".  These helpers exploit exactly that: the elements of *any*
registered library's SetOfRegions are collected onto one rank in
linearization order (a dense 1-D buffer a checkpoint writer or sequential
tool can use directly), or scattered back from such a buffer.

Implementation: the root-side staging buffer is itself a distributed
structure — a Chaos array whose translation table assigns every element to
the root — so both operations are ordinary Meta-Chaos copies and inherit
message aggregation, schedule symmetry, and cost accounting for free.
"""

from __future__ import annotations

import numpy as np

from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.vmachine.comm import Communicator

__all__ = ["gather_canonical", "scatter_canonical"]


def _staging(comm: Communicator, n: int, root: int, dtype) -> ChaosArray:
    owners = np.full(n, root, dtype=np.int64)
    staging = ChaosArray.zeros(comm, owners, dtype=dtype)
    return staging


def gather_canonical(
    comm: Communicator,
    lib: str,
    array,
    sor: SetOfRegions,
    root: int = 0,
    dtype=np.float64,
) -> np.ndarray | None:
    """Collect ``sor``'s elements on ``root`` in linearization order.

    Collective.  Returns the dense canonical buffer on ``root`` and
    ``None`` elsewhere.
    """
    n = sor.size
    staging = _staging(comm, n, root, dtype)
    sched = mc_compute_schedule(
        comm,
        lib, array, sor,
        "chaos", staging, mc_new_set_of_regions(IndexRegion(np.arange(n))),
        ScheduleMethod.COOPERATION,
    )
    mc_copy(comm, sched, array, staging)
    return staging.local.copy() if comm.rank == root else None


def scatter_canonical(
    comm: Communicator,
    values: np.ndarray | None,
    lib: str,
    array,
    sor: SetOfRegions,
    root: int = 0,
) -> None:
    """Distribute a canonical buffer from ``root`` into ``sor``'s elements.

    Collective; ``values`` (length ``sor.size``, linearization order) is
    only read on ``root``.
    """
    n = sor.size
    if comm.rank == root:
        values = np.asarray(values)
        if values.shape != (n,):
            raise ValueError(
                f"canonical buffer has shape {values.shape}, expected ({n},)"
            )
        dtype = values.dtype
    else:
        dtype = np.float64
    # Everyone must agree on the staging dtype.
    dtype = comm.bcast(dtype, root=root)
    staging = _staging(comm, n, root, dtype)
    if comm.rank == root:
        staging.local[:] = values
    sched = mc_compute_schedule(
        comm,
        "chaos", staging, mc_new_set_of_regions(IndexRegion(np.arange(n))),
        lib, array, sor,
        ScheduleMethod.COOPERATION,
    )
    mc_copy(comm, sched, staging, array)
