"""Region constructors for Multiblock Parti (regular array sections)."""

from __future__ import annotations

from repro.core.region import SectionRegion
from repro.distrib.section import Section

__all__ = ["parti_region", "parti_region_slices"]


def parti_region(
    lower: tuple[int, ...],
    upper: tuple[int, ...],
    stride: tuple[int, ...] | None = None,
) -> SectionRegion:
    """``CreateRegion_BlockParti``: inclusive-bounds regular section.

    Mirrors the paper's HPF region constructor (Figure 9): ``lower`` and
    ``upper`` are the first and last global indices taken per dimension.
    """
    return SectionRegion.from_bounds(lower, upper, stride)


def parti_region_slices(
    slices: tuple[slice, ...], shape: tuple[int, ...]
) -> SectionRegion:
    """Region from Python slice syntax resolved against the global shape."""
    return SectionRegion(Section.from_slices(slices, shape))
