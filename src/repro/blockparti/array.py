"""Block-distributed multidimensional arrays (the Parti data structure)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.dataplane import accept_local, read_flat
from repro.distrib.cartesian import CartesianDist
from repro.vmachine.comm import Communicator

__all__ = ["BlockPartiArray"]


class BlockPartiArray:
    """One rank's piece of a regularly block-distributed array.

    Canonical local storage is the rank's sub-block, flattened C-order
    (``self.local``); ``local_nd`` is the shaped view.  Stencil sweeps use
    a separate ghost-extended scratch buffer filled by a
    :class:`~repro.blockparti.schedule.GhostSchedule` (ghosts are not part
    of the canonical storage, so Meta-Chaos local offsets stay dense).

    Every rank of the distributing communicator holds one instance,
    created collectively by the class methods.
    """

    def __init__(self, comm: Communicator, dist: CartesianDist, local: np.ndarray):
        if dist.nprocs != comm.size:
            raise ValueError(
                f"distribution spans {dist.nprocs} procs but communicator "
                f"has {comm.size}"
            )
        expected = dist.local_size(comm.rank)
        if local.size != expected:
            raise ValueError(
                f"rank {comm.rank}: local storage has {local.size} elements, "
                f"distribution expects {expected}"
            )
        self.comm = comm
        self.dist = dist
        # Zero-copy: any strided ndarray is first-class local storage.
        self.local = accept_local(local)

    # -- collective constructors ---------------------------------------------

    @classmethod
    def zeros(
        cls,
        comm: Communicator,
        shape: tuple[int, ...],
        nprocs_grid: tuple[int, ...] | None = None,
        dtype=np.float64,
    ) -> "BlockPartiArray":
        """Block-distributed array of zeros over a (given or balanced) grid."""
        dist = cls._make_dist(shape, comm.size, nprocs_grid)
        return cls(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))

    @classmethod
    def from_function(
        cls,
        comm: Communicator,
        shape: tuple[int, ...],
        fn: Callable[..., np.ndarray],
        nprocs_grid: tuple[int, ...] | None = None,
        dtype=np.float64,
    ) -> "BlockPartiArray":
        """Initialize from ``fn(*index_grids) -> values`` (owner computes).

        ``fn`` receives one integer array per dimension (the global indices
        of the rank's local block, broadcastable) and returns the values —
        e.g. ``lambda i, j: np.sin(i) * j``.
        """
        dist = cls._make_dist(shape, comm.size, nprocs_grid)
        arr = cls(comm, dist, np.zeros(dist.local_size(comm.rank), dtype=dtype))
        block = dist.owned_block(comm.rank)
        grids = np.meshgrid(
            *[np.arange(lo, hi) for lo, hi in block], indexing="ij", sparse=True
        )
        arr.local_nd[...] = fn(*grids)
        return arr

    @classmethod
    def from_global(
        cls,
        comm: Communicator,
        full: np.ndarray,
        nprocs_grid: tuple[int, ...] | None = None,
    ) -> "BlockPartiArray":
        """Each rank slices its block out of a replicated global array."""
        dist = cls._make_dist(full.shape, comm.size, nprocs_grid)
        block = dist.owned_block(comm.rank)
        local = full[tuple(slice(lo, hi) for lo, hi in block)]
        return cls(comm, dist, local.astype(full.dtype, copy=True))

    @staticmethod
    def _make_dist(
        shape: tuple[int, ...], nprocs: int, grid: tuple[int, ...] | None
    ) -> CartesianDist:
        from repro.distrib.cartesian import BLOCK, COLLAPSED, DimDist, proc_grid

        if grid is None:
            grid = proc_grid(nprocs, len(shape))
        if int(np.prod(grid)) != nprocs:
            raise ValueError(f"grid {grid} does not cover {nprocs} procs")
        dims = tuple(
            DimDist(BLOCK if p > 1 else COLLAPSED, n, p)
            for n, p in zip(shape, grid)
        )
        return CartesianDist(dims)

    # -- views -----------------------------------------------------------------

    @property
    def global_shape(self) -> tuple[int, ...]:
        return self.dist.global_shape

    @property
    def local_shape(self) -> tuple[int, ...]:
        return self.dist.local_shape(self.comm.rank)

    @property
    def local_nd(self) -> np.ndarray:
        """Shaped view of the local block."""
        if self.local.ndim > 1:
            if self.local.shape != self.local_shape:
                raise ValueError(
                    f"strided local storage {self.local.shape} does not "
                    f"admit a {self.local_shape} view"
                )
            return self.local
        return self.local.reshape(self.local_shape)

    @property
    def dtype(self):
        return self.local.dtype

    @property
    def itemsize(self) -> int:
        return self.local.dtype.itemsize

    def owned_block(self) -> tuple[tuple[int, int], ...]:
        """This rank's per-dim global index intervals ``[lo, hi)``."""
        return self.dist.owned_block(self.comm.rank)

    # -- test/debug helpers ------------------------------------------------------

    def gather_global(self) -> np.ndarray | None:
        """Collect the full global array on rank 0 (testing oracle)."""
        pieces = self.comm.gather((self.comm.rank, read_flat(self.local).copy()))
        if pieces is None:
            return None
        out = np.zeros(self.global_shape, dtype=self.dtype)
        for rank, local in pieces:
            block = self.dist.owned_block(rank)
            shape = tuple(hi - lo for lo, hi in block)
            out[tuple(slice(lo, hi) for lo, hi in block)] = local.reshape(shape)
        return out

    def __repr__(self) -> str:
        return (
            f"BlockPartiArray(shape={self.global_shape}, "
            f"rank={self.comm.rank}/{self.comm.size}, local={self.local_shape})"
        )
