"""Meta-Chaos interface functions for Multiblock Parti (§4.1.3).

The adapter exposes regular block-distributed arrays to Meta-Chaos:
dereferencing is closed-form block arithmetic (cheap), and locally-owned
elements of a SetOfRegions are enumerated by block intersection.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blockparti.array import BlockPartiArray
from repro.core.registry import (
    LibraryAdapter,
    cartesian_local_elements,
    register_adapter,
)
from repro.core.setofregions import SetOfRegions
from repro.distrib.base import Distribution
from repro.vmachine.process import current_process

__all__ = ["BlockPartiAdapter"]


class BlockPartiAdapter(LibraryAdapter):
    """Interface functions for ``"blockparti"``-distributed arrays."""

    name = "blockparti"

    def dist_of(self, handle: Any) -> Distribution:
        return handle.dist

    def shape_of(self, handle: Any) -> tuple[int, ...]:
        if isinstance(handle, BlockPartiArray):
            return handle.global_shape
        return handle.shape  # MaterializedHandle

    def local_data(self, array: Any) -> np.ndarray:
        if not isinstance(array, BlockPartiArray):
            raise TypeError("a local BlockPartiArray is required for data access")
        return array.local

    def adopt_local(self, array: Any, values: np.ndarray) -> bool:
        array.local = values
        return True

    def itemsize_of(self, handle: Any) -> int:
        return handle.itemsize

    def charge_deref(self, n: int) -> None:
        current_process().charge_deref_regular(n)

    def local_elements(
        self, handle: Any, sor: SetOfRegions, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return cartesian_local_elements(
            self.dist_of(handle), self.shape_of(handle), sor, rank,
            charge=self.charge_locate,
        )


register_adapter(BlockPartiAdapter())
