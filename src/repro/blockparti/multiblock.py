"""True multiblock arrays (the Multiblock in Multiblock Parti).

Multiblock applications (e.g. multiblock CFD grids) decompose an irregular
domain into several logically regular blocks, each block-distributed, with
*inter-block boundary conditions*: at every time step, faces of one block
are copied into ghost regions (or interior sections) of neighboring blocks
— the paper's §5.3 scenario is exactly one such boundary update.

:class:`MultiblockArray` owns a list of block-distributed arrays plus the
inter-block interface descriptions; :meth:`build_interface_schedules`
builds one native regular-section copy schedule per interface, and
:meth:`update_interfaces` executes them all.  Individual blocks are plain
:class:`~repro.blockparti.array.BlockPartiArray` handles, so any block can
also take part in Meta-Chaos copies with other libraries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blockparti.array import BlockPartiArray
from repro.blockparti.schedule import PartiCopySchedule, build_copy_schedule
from repro.core.region import SectionRegion
from repro.distrib.section import Section
from repro.vmachine.comm import Communicator

__all__ = ["BlockInterface", "MultiblockArray"]


@dataclass(frozen=True)
class BlockInterface:
    """One directed inter-block boundary condition.

    Elements of ``src_section`` of block ``src_block`` are copied onto
    ``dst_section`` of block ``dst_block`` (sections must select equal
    element counts; the mapping is linearization order, i.e. row-major
    within each section).
    """

    src_block: int
    dst_block: int
    src_section: Section
    dst_section: Section

    def validate(self, nblocks: int) -> None:
        if not (0 <= self.src_block < nblocks and 0 <= self.dst_block < nblocks):
            raise ValueError("interface references an unknown block")
        if self.src_section.size != self.dst_section.size:
            raise ValueError(
                f"interface element counts differ: {self.src_section.size} "
                f"vs {self.dst_section.size}"
            )


class MultiblockArray:
    """Several block-distributed arrays forming one logical field."""

    def __init__(self, comm: Communicator, blocks: list[BlockPartiArray]):
        if not blocks:
            raise ValueError("need at least one block")
        for b in blocks:
            if b.comm is not comm:
                raise ValueError("all blocks must share the communicator")
        self.comm = comm
        self.blocks = list(blocks)
        self.interfaces: list[BlockInterface] = []
        self._schedules: list[PartiCopySchedule] | None = None

    # -- collective constructors ------------------------------------------------

    @classmethod
    def zeros(
        cls,
        comm: Communicator,
        shapes: list[tuple[int, ...]],
        dtype=np.float64,
    ) -> "MultiblockArray":
        """One zero block per shape, each distributed over all processors
        (the standard Multiblock Parti block-to-whole-machine mapping)."""
        return cls(
            comm, [BlockPartiArray.zeros(comm, s, dtype=dtype) for s in shapes]
        )

    # -- interface management ------------------------------------------------------

    def add_interface(self, interface: BlockInterface) -> None:
        """Declare an inter-block boundary condition (before schedules)."""
        interface.validate(len(self.blocks))
        self.interfaces.append(interface)
        self._schedules = None

    def connect(
        self,
        src_block: int,
        src_slices: tuple[slice, ...],
        dst_block: int,
        dst_slices: tuple[slice, ...],
    ) -> None:
        """Convenience wrapper over :meth:`add_interface` using slices."""
        self.add_interface(
            BlockInterface(
                src_block,
                dst_block,
                Section.from_slices(src_slices, self.blocks[src_block].global_shape),
                Section.from_slices(dst_slices, self.blocks[dst_block].global_shape),
            )
        )

    # -- inspector / executor ---------------------------------------------------------

    def build_interface_schedules(self) -> list[PartiCopySchedule]:
        """Inspector: one native regular-section schedule per interface.

        Collective; reusable across time steps (the schedules depend only
        on distributions and sections, not values).
        """
        self._schedules = [
            build_copy_schedule(
                self.blocks[itf.src_block],
                SectionRegion(itf.src_section),
                self.blocks[itf.dst_block],
                SectionRegion(itf.dst_section),
            )
            for itf in self.interfaces
        ]
        return self._schedules

    def update_interfaces(self) -> None:
        """Executor: run every inter-block boundary copy once (collective)."""
        if self._schedules is None:
            self.build_interface_schedules()
        for itf, sched in zip(self.interfaces, self._schedules):
            sched.execute(self.blocks[itf.src_block], self.blocks[itf.dst_block])

    # -- views -------------------------------------------------------------------------

    @property
    def nblocks(self) -> int:
        return len(self.blocks)

    def block(self, i: int) -> BlockPartiArray:
        return self.blocks[i]

    def gather_global(self) -> list[np.ndarray] | None:
        """Collect every block's global array on rank 0 (testing oracle)."""
        gathered = [b.gather_global() for b in self.blocks]
        return gathered if self.comm.rank == 0 else None

    def __repr__(self) -> str:
        return (
            f"MultiblockArray(nblocks={self.nblocks}, "
            f"interfaces={len(self.interfaces)})"
        )
