"""Multiblock Parti analogue: regular block-distributed (multiblock) arrays.

Multiblock Parti (Agrawal, Sussman, Saltz) manages regularly distributed
multidimensional arrays — possibly several interacting blocks — and builds
communication schedules for two patterns:

- *ghost-cell (overlap) fill* along block boundaries for stencil sweeps;
- *regular-section copies* between (sections of) two distributed arrays,
  computed by closed-form block intersection.

This package provides both, a block-distributed array type
(:class:`~repro.blockparti.array.BlockPartiArray`), stencil sweep
executors, and the Meta-Chaos interface functions
(:class:`~repro.blockparti.interface.BlockPartiAdapter`, registered as
``"blockparti"``).
"""

from repro.blockparti.array import BlockPartiArray
from repro.blockparti.regions import parti_region
from repro.blockparti.schedule import (
    GhostSchedule,
    PartiCopySchedule,
    build_copy_schedule,
    build_ghost_schedule,
)
from repro.blockparti.ops import jacobi_sweep, fill_block
from repro.blockparti.multiblock import BlockInterface, MultiblockArray
from repro.blockparti.interface import BlockPartiAdapter

__all__ = [
    "BlockInterface",
    "MultiblockArray",
    "BlockPartiArray",
    "parti_region",
    "GhostSchedule",
    "PartiCopySchedule",
    "build_ghost_schedule",
    "build_copy_schedule",
    "jacobi_sweep",
    "fill_block",
    "BlockPartiAdapter",
]
