"""Native Multiblock Parti communication schedules.

Two schedule kinds, both built by closed-form block intersection (no
per-element table lookups — the library's defining optimization):

- :class:`GhostSchedule` — overlap/ghost-cell fill along the block
  boundaries of one array, for stencil sweeps;
- :class:`PartiCopySchedule` — regular-section copy between two block
  arrays ("inter-block boundaries must be updated at every time-step" in
  multiblock CFD codes; the baseline of paper Table 5).

The regular-section copy is built in a *single* ownership pass: each rank
intersects the source section with its own block, computes — still in
closed form — both the destination owners *and* destination offsets of
those elements, keeps its send lists, and ships each receiver its
receive-half piece.  Meta-Chaos cannot collapse the two sides like this
(it must dereference source and destination through the opaque
linearization interface), which is exactly the small extra overhead
Table 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockparti.array import BlockPartiArray
from repro.core.region import SectionRegion
from repro.core.wire import RunEncoded
from repro.distrib.section import Section
from repro.vmachine.process import current_process

__all__ = [
    "GhostSchedule",
    "build_ghost_schedule",
    "PartiCopySchedule",
    "build_copy_schedule",
]

_TAG_GHOST = 1 << 16
_TAG_PIECES = (1 << 16) + 1
_TAG_COPY = (1 << 16) + 2


# ---------------------------------------------------------------------------
# ghost-cell fill
# ---------------------------------------------------------------------------


@dataclass
class _Face:
    """One ghost exchange along one dimension with one neighbor."""

    dim: int
    direction: int  # -1: neighbor at lower indices, +1: higher
    neighbor: int   # communicator rank


@dataclass
class GhostSchedule:
    """Overlap-fill schedule for one BlockPartiArray."""

    width: int
    faces: list[_Face]
    local_shape: tuple[int, ...]

    def exchange(self, arr: BlockPartiArray) -> np.ndarray:
        """Fill and return a ghost-extended copy of the local block.

        The returned array extends every dimension by ``width`` on both
        sides; ghosts beyond the global boundary remain zero.  One message
        per face (aggregated slab).
        """
        w = self.width
        comm = arr.comm
        proc = current_process()
        local = arr.local_nd
        ext_shape = tuple(n + 2 * w for n in local.shape)
        ext = np.zeros(ext_shape, dtype=arr.dtype)
        interior = tuple(slice(w, w + n) for n in local.shape)
        ext[interior] = local
        proc.charge_mem(local.nbytes)

        # Send boundary slabs (pack cost per element), then receive.
        for face in self.faces:
            slab = self._boundary_slab(local, face.dim, face.direction, w)
            proc.charge_pack(slab.size)
            # .copy(): the transport is zero-copy, and the sweep mutates
            # the local block right after the exchange.
            comm.send(face.neighbor, slab.copy(), _TAG_GHOST + face.dim * 2 + (face.direction > 0))
        for face in self.faces:
            # The matching message comes from the opposite direction.
            recv_tag = _TAG_GHOST + face.dim * 2 + (face.direction < 0)
            slab = comm.recv(face.neighbor, recv_tag)
            proc.charge_pack(slab.size)
            self._ghost_slab(ext, face.dim, face.direction, w)[...] = slab
        return ext

    @staticmethod
    def _boundary_slab(local: np.ndarray, dim: int, direction: int, w: int) -> np.ndarray:
        sl = [slice(None)] * local.ndim
        sl[dim] = slice(0, w) if direction < 0 else slice(local.shape[dim] - w, None)
        return local[tuple(sl)]

    def _ghost_slab(self, ext: np.ndarray, dim: int, direction: int, w: int) -> np.ndarray:
        sl = [slice(w, w + n) for n in self.local_shape]
        sl[dim] = slice(0, w) if direction < 0 else slice(ext.shape[dim] - w, None)
        return ext[tuple(sl)]


def build_ghost_schedule(arr: BlockPartiArray, width: int = 1) -> GhostSchedule:
    """Inspector for the overlap fill: find neighbor ranks per dimension.

    Purely local closed-form work on the processor grid (charged as a few
    block intersections).
    """
    proc = current_process()
    proc.charge_startup()
    dist = arr.dist
    coords = dist.coords_of_rank(arr.comm.rank)
    faces: list[_Face] = []
    for dim, d in enumerate(dist.dims):
        if d.procs <= 1:
            continue
        for direction in (-1, +1):
            ncoord = coords[dim] + direction
            if 0 <= ncoord < d.procs:
                ncoords = list(coords)
                ncoords[dim] = ncoord
                neighbor = int(np.ravel_multi_index(tuple(ncoords), dist.grid))
                faces.append(_Face(dim, direction, neighbor))
    proc.charge_locate(len(faces) + 1, 0)
    return GhostSchedule(width=width, faces=faces, local_shape=arr.local_shape)


# ---------------------------------------------------------------------------
# regular-section copy
# ---------------------------------------------------------------------------


@dataclass
class PartiCopySchedule:
    """Send/receive lists for one regular-section copy (one rank's view)."""

    sends: dict[int, np.ndarray] = field(default_factory=dict)
    recvs: dict[int, np.ndarray] = field(default_factory=dict)
    n_elements: int = 0

    def execute(self, src: BlockPartiArray, dst: BlockPartiArray) -> None:
        """Move the data.  Unlike Meta-Chaos, Parti stages *all* transfers
        through a communication buffer — including a processor's
        transfers to itself (the paper's §5.3 inefficiency at small P) —
        so the local path is charged two packing passes.
        """
        comm = src.comm
        proc = current_process()
        for d in sorted(self.sends):
            offs = self.sends[d]
            if len(offs) == 0:
                continue
            buf = src.local[offs]
            proc.charge_pack(len(offs))
            if d == comm.rank:
                # Through the intermediate buffer, then scatter.
                dst.local[self.recvs[d]] = buf
                proc.charge_pack(len(offs))
            else:
                comm.send(d, buf, _TAG_COPY)
        for s in sorted(self.recvs):
            offs = self.recvs[s]
            if len(offs) == 0 or s == comm.rank:
                continue
            buf = comm.recv(s, _TAG_COPY)
            dst.local[offs] = buf
            proc.charge_pack(len(offs))


def build_copy_schedule(
    src: BlockPartiArray,
    src_region: SectionRegion | Section,
    dst: BlockPartiArray,
    dst_region: SectionRegion | Section,
) -> PartiCopySchedule:
    """Inspector for a regular-section copy (collective on the comm).

    Single ownership pass: the sender side computes everything in closed
    form, including receiver offsets, and distributes the receive halves.
    """
    src_sec = src_region.section if isinstance(src_region, SectionRegion) else src_region
    dst_sec = dst_region.section if isinstance(dst_region, SectionRegion) else dst_region
    if src_sec.size != dst_sec.size:
        raise ValueError(
            f"section element counts differ: {src_sec.size} vs {dst_sec.size}"
        )
    comm = src.comm
    if dst.comm is not comm:
        raise ValueError("both arrays must be distributed by the same program")
    proc = current_process()
    proc.charge_startup()

    sched = PartiCopySchedule(n_elements=src_sec.size)

    # My source elements: closed-form intersection with my owned block.
    block = src.dist.owned_block(comm.rank)
    sub = src_sec.intersect_block(
        tuple(b[0] for b in block), tuple(b[1] for b in block)
    )
    recv_pieces: list[tuple | None] = [None] * comm.size
    if sub is not None and sub.size:
        lin = src_sec.lin_offset_of(sub)
        _, soffs = src.dist.owner_of_flat(sub.global_flat(src.global_shape))
        # Destination owners/offsets of the same linearization positions —
        # still closed form, one combined pass.
        dsub = _section_positions(dst_sec, lin)
        dranks, doffs = dst.dist.owner_of_flat(
            np.ravel_multi_index(dsub, dst.global_shape)
        )
        # Native Parti never dereferences element-by-element: ownership on
        # both sides comes from per-run block intersections, with only the
        # offset-array expansion paid per element.  (Meta-Chaos pays the
        # full per-element dereference through its opaque interface — the
        # small Table 5 overhead.)
        nruns = max(1, sub.size // max(1, sub.counts[-1]))
        proc.charge_locate(nruns * 2, 2 * len(lin))
        order = np.argsort(dranks, kind="stable")
        dr, so, do = dranks[order], soffs[order], doffs[order]
        uniq, starts = np.unique(dr, return_index=True)
        bounds = np.append(starts, len(dr))
        for i, d in enumerate(uniq):
            lo, hi = bounds[i], bounds[i + 1]
            sched.sends[int(d)] = so[lo:hi]
            recv_pieces[int(d)] = RunEncoded(do[lo:hi])

    # Dense distribution of receive halves (every rank to every rank, so
    # receivers know exactly what to expect).
    for d in range(comm.size):
        if d == comm.rank:
            continue
        comm.send(d, recv_pieces[d], _TAG_PIECES)
    for s in range(comm.size):
        piece = recv_pieces[s] if s == comm.rank else comm.recv(s, _TAG_PIECES)
        if piece is not None and len(piece):
            sched.recvs[s] = piece.array
    return sched


def _section_positions(section: Section, lin: np.ndarray) -> tuple[np.ndarray, ...]:
    """Per-dim global indices of section linearization positions."""
    return section.lin_to_multi(lin)
