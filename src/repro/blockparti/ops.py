"""Stencil executors for block-distributed arrays.

The regular-mesh sweep of the paper's Figure 1 (loop 1)::

    forall (i = 2:n1-1, j = 2:n2-1)
        a(i,j) = a(i,j-1) + a(i-1,j) + a(i+1,j) + a(i,j+1)

implemented as an inspector/executor pair: the inspector is
:func:`~repro.blockparti.schedule.build_ghost_schedule`, and
:func:`jacobi_sweep` is the executor — ghost fill, then a vectorized
4-point update on interior points.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.blockparti.array import BlockPartiArray
from repro.blockparti.schedule import GhostSchedule
from repro.vmachine.process import current_process

__all__ = ["jacobi_sweep", "fill_block"]


def jacobi_sweep(arr: BlockPartiArray, ghosts: GhostSchedule) -> None:
    """One 4-point update sweep over the global-interior points, in place.

    Points on the global boundary keep their values (matching the
    ``2:n-1`` loop bounds of the paper's example).  Charges 4 flops per
    updated point.
    """
    if arr.local_nd.ndim != 2:
        raise ValueError("jacobi_sweep expects a 2-D array")
    w = ghosts.width
    ext = ghosts.exchange(arr)
    n0, n1 = arr.local_shape
    # 4-point neighbor sum evaluated at every local point.
    center = ext[w : w + n0, w : w + n1]
    summed = (
        ext[w - 1 : w - 1 + n0, w : w + n1]
        + ext[w + 1 : w + 1 + n0, w : w + n1]
        + ext[w : w + n0, w - 1 : w - 1 + n1]
        + ext[w : w + n0, w + 1 : w + 1 + n1]
    )
    # Global-boundary mask: keep original values there.
    (glo0, ghi0), (glo1, ghi1) = arr.owned_block()
    g0, g1 = arr.global_shape
    i0 = np.arange(glo0, ghi0)[:, None]
    i1 = np.arange(glo1, ghi1)[None, :]
    interior = (i0 > 0) & (i0 < g0 - 1) & (i1 > 0) & (i1 < g1 - 1)
    out = np.where(interior, summed, center)
    current_process().charge_flops(4 * int(interior.sum()))
    arr.local_nd[...] = out


def fill_block(arr: BlockPartiArray, fn: Callable[..., np.ndarray]) -> None:
    """Owner-computes initialization of an existing array from
    ``fn(*global_index_grids)``."""
    block = arr.owned_block()
    grids = np.meshgrid(
        *[np.arange(lo, hi) for lo, hi in block], indexing="ij", sparse=True
    )
    arr.local_nd[...] = fn(*grids)
