"""Command-line interface: quick demos and experiment drivers.

Every subcommand lives in one registration table (``COMMANDS``): a
``(name, help, configure, run)`` row per command, rendered consistently
by ``python -m repro --help``.  Adding a command means adding one row —
the parser wiring and the dispatch share the same table, so the help
text and the dispatcher can never drift apart.

::

    python -m repro info                       # machine profiles & libraries
    python -m repro demo                       # the paper's Figure 9 example
    python -m repro coupled --procs 8 --remap mc-coop
    python -m repro matvec --client 1 --server 8 --vectors 4
    python -m repro plan-summary --procs 4 --arrays 3
    python -m repro trace --procs 4 --out trace.json   # Perfetto/chrome://tracing
    python -m repro profile --procs 4                  # cost-term attribution
    python -m repro autotune --elems 65536 --procs 8 --reuse 50 --validate 3
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable


def cmd_info(args) -> int:
    import repro
    from repro.core import registered_libraries
    from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2

    # Importing the libraries registers their adapters.
    import repro.blockparti  # noqa: F401
    import repro.chaos  # noqa: F401
    import repro.hpf  # noqa: F401
    import repro.pcxx  # noqa: F401

    print(f"repro {repro.__version__} — Meta-Chaos reproduction (IPPS 1997)")
    print(f"registered data parallel libraries: {', '.join(registered_libraries())}")
    for p in (IBM_SP2, ALPHA_FARM_ATM):
        print(
            f"profile {p.name}: latency {p.alpha * 1e6:.0f} us, "
            f"bandwidth {p.bandwidth / 1e6:.0f} MB/s, "
            f"table dereference {p.deref * 1e6:.0f} us/elem"
        )
    return 0


def cmd_demo(args) -> int:
    import numpy as np

    from repro.blockparti import BlockPartiArray
    from repro.chaos import ChaosArray
    from repro.core import (
        IndexRegion,
        ScheduleMethod,
        SectionRegion,
        mc_compute_schedule,
        mc_copy,
        mc_new_set_of_regions,
        schedule_stats,
    )
    from repro.distrib.section import Section
    from repro.vmachine import VirtualMachine

    n = args.size
    perm = np.random.default_rng(0).permutation(n * n)

    def spmd(comm):
        A = BlockPartiArray.from_function(comm, (n, n), lambda i, j: 1.0 * i * n + j)
        B = ChaosArray.zeros(comm, perm % comm.size)
        sched = mc_compute_schedule(
            comm,
            "blockparti", A,
            mc_new_set_of_regions(SectionRegion(Section.full((n, n)))),
            "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
            ScheduleMethod.COOPERATION,
        )
        mc_copy(comm, sched, A, B)
        stats = schedule_stats(comm, sched)
        full = B.gather_global()
        if comm.rank == 0:
            expect = np.zeros(n * n)
            expect[perm] = np.arange(n * n, dtype=float)
            assert np.allclose(full, expect)
            print(
                f"copied a {n}x{n} Parti array onto a permuted Chaos array: "
                f"{stats.n_elements} elements, {stats.message_pairs} messages, "
                f"locality {stats.locality:.0%} — verified element-exact"
            )
        return None

    result = VirtualMachine(args.procs).run(spmd)
    print(f"modelled elapsed time: {result.elapsed_ms:.3f} ms on {args.procs} procs")
    return 0


def cmd_coupled(args) -> int:
    from repro.apps.coupled import run_coupled_single_program
    from repro.apps.meshes import delaunay_mesh, full_remap_mapping

    shape = (args.size, args.size)
    npoints = args.size * args.size
    mesh = delaunay_mesh(npoints, seed=1)
    mapping = full_remap_mapping(shape, npoints, seed=2)
    t = run_coupled_single_program(
        args.procs, shape, mesh, mapping, timesteps=args.steps, remap=args.remap
    )
    print(
        f"coupled run ({args.remap}, P={args.procs}, mesh {shape[0]}x{shape[1]}):"
    )
    print(f"  inspector (total)        {t.inspector_ms:10.2f} ms")
    print(f"  remap schedule (total)   {t.sched_ms:10.2f} ms")
    print(f"  executor (per step)      {t.executor_per_iter_ms:10.2f} ms")
    print(f"  remap copies (per step)  {t.copy_per_iter_ms:10.2f} ms")
    return 0


def cmd_matvec(args) -> int:
    from repro.apps.matvec_cs import run_client_server_matvec

    t = run_client_server_matvec(
        args.client, args.server, n=args.size, nvectors=args.vectors
    )
    print(
        f"client/server matvec (client={args.client}, server={args.server}, "
        f"{args.vectors} vector(s), {args.size}x{args.size}):"
    )
    print(f"  compute schedules   {t.sched_ms:10.2f} ms")
    print(f"  send matrix         {t.matrix_ms:10.2f} ms")
    print(f"  server compute      {t.server_ms:10.2f} ms")
    print(f"  vector transfers    {t.vector_ms:10.2f} ms")
    print(f"  total               {t.total_ms:10.2f} ms")
    print(f"  client-local alternative: {t.local_alternative_ms:.2f} ms "
          f"(speedup {t.speedup_vs_local:.2f}x)")
    return 0


def cmd_plan_summary(args) -> int:
    """Per-pair message/byte/segment table of a fused multi-array plan.

    Builds ``--arrays`` schedules (regular Parti source onto distinct
    permuted Chaos destinations), compiles them into one
    :class:`~repro.core.plan.MovePlan`, and prints what each rank's fused
    messages carry — driven by :meth:`CommSchedule.stats` and
    :meth:`MovePlan.pair_table`, the same introspection the executors'
    ``plan:fuse`` trace events use.
    """
    import numpy as np

    from repro.blockparti import BlockPartiArray
    from repro.chaos import ChaosArray
    from repro.core import (
        IndexRegion,
        ScheduleMethod,
        SectionRegion,
        mc_compute_plan,
        mc_compute_schedule,
        mc_new_set_of_regions,
    )
    from repro.distrib.section import Section
    from repro.vmachine import VirtualMachine

    n = args.size
    k = args.arrays
    rng = np.random.default_rng(0)
    perms = [rng.permutation(n * n) for _ in range(k)]

    def spmd(comm):
        sor_src = mc_new_set_of_regions(SectionRegion(Section.full((n, n))))
        schedules = []
        for perm in perms:
            A = BlockPartiArray.zeros(comm, (n, n))
            B = ChaosArray.zeros(comm, perm % comm.size)
            schedules.append(
                mc_compute_schedule(
                    comm, "blockparti", A, sor_src,
                    "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
                    ScheduleMethod.COOPERATION,
                )
            )
        plan = mc_compute_plan(schedules)
        per_sched = [s.stats() for s in schedules]
        return comm.gather(
            {
                "rank": comm.rank,
                "rows": plan.pair_table(),
                "fused": plan.fused_message_count,
                "unfused": plan.unfused_message_count,
                "send_fanout": [st.send_fanout for st in per_sched],
                "send_bytes": [st.total_send_bytes for st in per_sched],
            }
        )

    result = VirtualMachine(args.procs).run(spmd)
    summaries = result.values[0]
    print(
        f"fused move plan: {k} array(s), {args.procs} procs, "
        f"{n}x{n} blockparti -> permuted chaos"
    )
    print(f"{'rank':>4}  {'peer':>4}  {'segs':>4}  {'elems':>7}  "
          f"{'data_bytes':>10}  {'alpha_saved':>11}")
    for s in summaries:
        for row in s["rows"]:
            print(
                f"{s['rank']:>4}  {row['peer']:>4}  {row['segments']:>4}  "
                f"{row['elements']:>7}  {row['data_bytes']:>10}  "
                f"{row['alpha_saved']:>11}"
            )
    fused = sum(s["fused"] for s in summaries)
    unfused = sum(s["unfused"] for s in summaries)
    bytes_total = sum(sum(s["send_bytes"]) for s in summaries)
    print(
        f"totals: {fused} fused message(s) replacing {unfused} "
        f"({unfused - fused} message latencies saved per execution), "
        f"{bytes_total} payload bytes per execution"
    )
    return 0


def _run_observed(procs: int, size: int, policy: str = "ordered"):
    """The demo's cross-library copy, run with observability enabled.

    Shared driver for ``trace`` and ``profile``: a regular BlockParti
    source copied onto a permuted Chaos destination (schedule build +
    single-schedule move + a 2-array fused plan move), so the resulting
    trace exercises every span kind — ``schedule:build``, ``pack``,
    ``wire``, ``unpack``, ``copy:local``, ``plan:compile``,
    ``plan:execute``.
    """
    import numpy as np

    from repro.blockparti import BlockPartiArray
    from repro.chaos import ChaosArray
    from repro.core import (
        ExecutorPolicy,
        IndexRegion,
        ScheduleMethod,
        SectionRegion,
        mc_compute_plan,
        mc_compute_schedule,
        mc_copy,
        mc_copy_many,
        mc_new_set_of_regions,
    )
    from repro.distrib.section import Section
    from repro.vmachine import VirtualMachine

    n = size
    pol = ExecutorPolicy.coerce(policy)
    rng = np.random.default_rng(0)
    perms = [rng.permutation(n * n) for _ in range(2)]

    def spmd(comm):
        sor_src = mc_new_set_of_regions(SectionRegion(Section.full((n, n))))
        arrays, schedules = [], []
        for perm in perms:
            A = BlockPartiArray.from_function(
                comm, (n, n), lambda i, j: 1.0 * i * n + j
            )
            B = ChaosArray.zeros(comm, perm % comm.size)
            arrays.append((A, B))
            schedules.append(
                mc_compute_schedule(
                    comm, "blockparti", A, sor_src,
                    "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
                    ScheduleMethod.COOPERATION, policy=pol,
                )
            )
        # One single-schedule move, then a fused 2-array plan move.
        mc_copy(comm, schedules[0], arrays[0][0], arrays[0][1], policy=pol)
        plan = mc_compute_plan(schedules)
        mc_copy_many(
            comm, plan,
            [a for a, _ in arrays], [b for _, b in arrays],
            policy=pol,
        )
        return None

    return VirtualMachine(procs, observe=True).run(spmd)


def cmd_trace(args) -> int:
    """Run an observed workload and export a Chrome/Perfetto trace."""
    from repro.observe import write_chrome_trace

    result = _run_observed(args.procs, args.size, args.policy)
    doc = write_chrome_trace(args.out, result)
    nspans = sum(len(s) for s in result.spans)
    nevents = sum(len(t) for t in result.traces)
    print(
        f"wrote {args.out}: {len(doc['traceEvents'])} trace events "
        f"({nspans} spans, {nevents} raw events, {args.procs} rank tracks)"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_profile(args) -> int:
    """Run an observed workload and print per-rank cost-term attribution."""
    from repro.observe import format_phase_table, format_profile

    result = _run_observed(args.procs, args.size, args.policy)
    print(format_profile(result.metrics, result.clocks))
    print()
    print(format_phase_table(result.metrics))
    worst = max(
        abs(m.attributed_seconds() - c)
        for m, c in zip(result.metrics, result.clocks)
    )
    print(f"\nmax |attributed - clock| residual: {worst:.3e} s")
    return 0 if worst < 1e-9 else 1


def cmd_serve(args) -> int:
    """Run the multi-tenant coupling service against a demo object server."""
    from repro.apps.service_demo import run_service_demo

    report, server_summary, _ = run_service_demo(
        tenants=args.tenants,
        gateway_procs=args.gateway,
        server_procs=args.server,
        size=args.size,
        shapes=args.shapes,
        iterations=args.iters,
        policy=args.policy,
        reliability=args.reliability,
        max_queue_depth=args.queue_depth,
        max_inflight_per_tenant=args.inflight,
    )
    ok = sum(1 for t in report.tenants if t.ok)
    shed = sum(t.ops_shed for t in report.tenants)
    lat = sorted(x for t in report.tenants for x in t.latencies)
    c = report.cache
    print(
        f"{ok}/{len(report.tenants)} tenants ok over {report.rounds} rounds "
        f"({shed} submissions shed, slot high water "
        f"{report.slot_high_water})"
    )
    if lat:
        p50 = lat[len(lat) // 2] * 1e6
        p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))] * 1e6
        print(f"op latency p50 {p50:.0f} us, p99 {p99:.0f} us "
              f"({len(lat)} resolved ops)")
    print(
        f"gateway cache: {c['schedule_hits']} schedule hits / "
        f"{c['schedule_misses']} misses, {c['plan_hits']} plan hits / "
        f"{c['plan_misses']} misses, {c['halves_lowered']} lowered halves"
    )
    s = report.server_counters
    if s:
        print(
            f"server cache:  {s.get('schedule_hits', 0)} schedule hits / "
            f"{s.get('schedule_misses', 0)} misses, "
            f"{s.get('plan_hits', 0)} plan hits / "
            f"{s.get('plan_misses', 0)} misses"
        )
    print(f"server: {server_summary.get('ops_served', 0)} ops served")
    return 0 if report.ok else 1


def cmd_record(args) -> int:
    from repro.replay.cli import cmd_record as run

    return run(args)


def cmd_replay(args) -> int:
    from repro.replay.cli import cmd_replay as run

    return run(args)


def cmd_autotune(args) -> int:
    """Search the mapping space analytically; optionally validate winners."""
    from repro.autotune import (
        CostModel,
        DistSpec,
        WorkloadSpec,
        calibrate,
        search_mapping,
        validate_top,
    )

    def parse_dist(text: str | None) -> DistSpec | None:
        if text is None:
            return None
        if text.startswith("cyclic(") and text.endswith(")"):
            return DistSpec("block_cyclic", block=int(text[7:-1]))
        if text.startswith("irregular"):
            seed = int(text[10:-1]) if "(" in text else 11
            return DistSpec("irregular", seed=seed)
        return DistSpec(text)

    workload = WorkloadSpec(
        name="cli",
        nelems=args.elems,
        nprocs=args.procs,
        pattern=args.pattern,
        seed=args.seed,
        narrays=args.arrays,
        reuse=args.reuse,
    )
    model = CostModel(workload.profile)
    space_kwargs = dict(
        fixed_src=parse_dist(args.fix_src),
        fixed_dst=parse_dist(args.fix_dst),
    )
    result = search_mapping(workload, model=model, **space_kwargs)
    if args.calibrate:
        model = calibrate(
            workload, [p.mapping for p in result.ranked[: args.top]], model
        )
        result = search_mapping(workload, model=model, **space_kwargs)
        cal = model.coefficients.as_dict()
        print("calibrated coefficients: "
              + ", ".join(f"{t}={v:.3g}" for t, v in cal.items()))
    print(
        f"searched {result.evaluated + result.pruned} mapping points "
        f"({result.pruned} pruned) in {result.search_wall_s * 1e3:.1f} ms "
        f"wall — n={workload.nelems}, P={workload.nprocs}, "
        f"pattern={workload.pattern}, reuse={workload.reuse}"
    )
    print(f"{'predicted':>11}  {'build':>9}  {'move':>9}  mapping")
    for row in result.table(args.top):
        print(
            f"{row['predicted_total_ms']:>9.3f} ms  "
            f"{row['predicted_build_ms']:>6.3f} ms  "
            f"{row['predicted_move_ms']:>6.3f} ms  {row['mapping']}"
        )
    if args.validate > 0:
        pairs = validate_top(workload, result, top=args.validate)
        print(f"\nvalidated top {len(pairs)} under observe=True:")
        best_measured = min(m.total_s for _, m in pairs)
        for pred, meas in pairs:
            err = abs(pred.total_s - meas.total_s) / meas.total_s
            print(
                f"  {pred.mapping.label()}: predicted "
                f"{pred.total_s * 1e3:.3f} ms, measured "
                f"{meas.total_s * 1e3:.3f} ms ({err:.1%} error)"
            )
        chosen = pairs[0][1].total_s
        gap = (chosen - best_measured) / best_measured
        print(f"  auto-chosen mapping within {gap:.1%} of the measured best")
        return 0 if gap <= 0.05 else 1
    return 0


# -- registration table ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Command:
    """One subcommand: its name, one-line help, arguments, and runner."""

    name: str
    help: str
    run: Callable
    configure: Callable[[argparse.ArgumentParser], None] | None = None


def _std(p: argparse.ArgumentParser, procs: int = 4, size: int = 16,
         policy: bool = False) -> None:
    p.add_argument("--procs", type=int, default=procs)
    p.add_argument("--size", type=int, default=size)
    if policy:
        p.add_argument("--policy", choices=("ordered", "overlap", "auto"),
                       default="ordered")


def _configure_coupled(p):
    _std(p, size=64)
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--remap", choices=("mc-coop", "mc-dup", "chaos"),
                   default="mc-coop")


def _configure_matvec(p):
    p.add_argument("--client", type=int, default=1)
    p.add_argument("--server", type=int, default=8)
    p.add_argument("--vectors", type=int, default=1)
    p.add_argument("--size", type=int, default=512)


def _configure_plan_summary(p):
    _std(p)
    p.add_argument("--arrays", type=int, default=3)


def _configure_trace(p):
    _std(p, policy=True)
    p.add_argument("--out", default="trace.json")


def _configure_serve(p):
    p.add_argument("--tenants", type=int, default=16)
    p.add_argument("--gateway", type=int, default=2)
    p.add_argument("--server", type=int, default=3)
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--shapes", type=int, default=1,
                   help="distinct array signatures (shape classes); tenants "
                        "are assigned round-robin, so shapes=1 makes every "
                        "bind after the first a shared-cache hit")
    p.add_argument("--iters", type=int, default=2,
                   help="push/compute/pull iterations per tenant")
    p.add_argument("--policy", choices=("ordered", "overlap"),
                   default="ordered")
    p.add_argument("--reliability", action="store_true")
    p.add_argument("--queue-depth", type=int, default=1024)
    p.add_argument("--inflight", type=int, default=8)


def _configure_autotune(p):
    p.add_argument("--elems", type=int, default=65536,
                   help="elements moved per schedule")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--pattern", choices=("permute", "identity", "section"),
                   default="permute")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arrays", type=int, default=1,
                   help="same-shaped fields per timestep (fusion candidates)")
    p.add_argument("--reuse", type=int, default=1,
                   help="data moves amortizing one schedule build")
    p.add_argument("--top", type=int, default=5,
                   help="ranked mapping points to print")
    p.add_argument("--validate", type=int, default=0, metavar="N",
                   help="execute the top N candidates under observe=True "
                        "and report predicted vs measured")
    p.add_argument("--calibrate", action="store_true",
                   help="refit per-term build coefficients from measured "
                        "runs of the top candidates, then re-search")
    p.add_argument("--fix-src", metavar="DIST",
                   help="pin the source distribution (block, cyclic, "
                        "cyclic(K), irregular[(SEED)])")
    p.add_argument("--fix-dst", metavar="DIST",
                   help="pin the destination distribution")


def _record_replay_configures():
    from repro.replay.cli import add_record_args, add_replay_args

    return add_record_args, add_replay_args


COMMANDS: tuple[Command, ...] = (
    Command("info", "machine profiles and registered libraries", cmd_info),
    Command("demo", "cross-library copy demo (Parti -> Chaos)", cmd_demo,
            lambda p: _std(p, size=32)),
    Command("coupled", "coupled-mesh application (paper §5.1)", cmd_coupled,
            _configure_coupled),
    Command("matvec", "client/server matvec (paper §5.4)", cmd_matvec,
            _configure_matvec),
    Command("plan-summary",
            "per-pair message/byte/segment table of a fused MovePlan",
            cmd_plan_summary, _configure_plan_summary),
    Command("trace", "export a Chrome/Perfetto trace of an observed demo run",
            cmd_trace, _configure_trace),
    Command("profile", "per-rank cost-term attribution of an observed run",
            cmd_profile, lambda p: _std(p, policy=True)),
    Command("serve",
            "multi-tenant coupling service demo (sessions, shared caches)",
            cmd_serve, _configure_serve),
    Command("record",
            "run a named workload under the recorder; write a sealed "
            "replay artifact",
            cmd_record, lambda p: _record_replay_configures()[0](p)),
    Command("replay",
            "verify and re-execute a recorded run (all ranks, or one rank "
            "in isolation with --rank)",
            cmd_replay, lambda p: _record_replay_configures()[1](p)),
    Command("autotune",
            "cost-model search over the mapping space; optional validation",
            cmd_autotune, _configure_autotune),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Meta-Chaos reproduction (IPPS 1997) — demos and drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    runners: dict[str, Callable] = {}
    for cmd in COMMANDS:
        p = sub.add_parser(cmd.name, help=cmd.help, description=cmd.help)
        if cmd.configure is not None:
            cmd.configure(p)
        runners[cmd.name] = cmd.run
    args = parser.parse_args(argv)
    return runners[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
