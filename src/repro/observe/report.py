"""Text rendering of a run's cost-term profile.

The ``python -m repro profile`` subcommand prints what the paper's
Tables 3-5 tabulate by hand: *where the logical time went*, per rank and
per analytical cost-model term (see :data:`~repro.observe.metrics.
COST_TERMS`).  The per-rank term totals are exact decompositions of the
rank's logical clock — :func:`format_profile` prints the residual so a
reader can see the attribution closing to within float noise.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.observe.metrics import COST_TERMS, MetricsSnapshot

__all__ = ["format_profile", "format_phase_table", "profile_result"]


def _fmt_ms(seconds: float, width: int = 10) -> str:
    return f"{seconds * 1e3:{width}.3f}"


def format_profile(
    metrics: Sequence[MetricsSnapshot],
    clocks: Sequence[float],
    unit_label: str = "ms",
) -> str:
    """Per-rank cost-term table plus machine-wide totals.

    ``metrics[r]`` is rank ``r``'s :class:`~repro.observe.metrics.
    MetricsSnapshot`; ``clocks[r]`` its final logical clock (seconds).
    """
    lines = []
    header = f"{'rank':>4}  " + "".join(f"{t:>12}" for t in COST_TERMS)
    lines.append(header + f"{'attributed':>12}{'clock':>12}{'residual':>12}")
    totals = {t: 0.0 for t in COST_TERMS}
    for rank, (snap, clock) in enumerate(zip(metrics, clocks)):
        per_term = snap.term_totals()
        attributed = snap.attributed_seconds()
        row = f"{rank:>4}  "
        for t in COST_TERMS:
            v = per_term.get(t, 0.0)
            totals[t] += v
            row += f"{_fmt_ms(v, 12)}"
        row += f"{_fmt_ms(attributed, 12)}{_fmt_ms(clock, 12)}"
        row += f"{(clock - attributed) * 1e3:>12.2e}"
        lines.append(row)
    total_row = f"{'all':>4}  " + "".join(
        f"{_fmt_ms(totals[t], 12)}" for t in COST_TERMS
    )
    lines.append(total_row)
    lines.append(f"(all values in {unit_label} of logical time)")
    return "\n".join(lines)


def format_phase_table(
    metrics: Sequence[MetricsSnapshot], top: int = 12
) -> str:
    """Machine-wide phase x term breakdown, largest phases first."""
    agg: dict[str, dict[str, float]] = {}
    for snap in metrics:
        for (phase, term), seconds in snap.terms.items():
            agg.setdefault(phase or "(no span)", {}).setdefault(term, 0.0)
            agg[phase or "(no span)"][term] += seconds
    order = sorted(agg, key=lambda p: -sum(agg[p].values()))[:top]
    lines = [f"{'phase':<18}" + "".join(f"{t:>12}" for t in COST_TERMS)
             + f"{'total':>12}"]
    for phase in order:
        row = f"{phase:<18}"
        for t in COST_TERMS:
            row += f"{_fmt_ms(agg[phase].get(t, 0.0), 12)}"
        row += f"{_fmt_ms(sum(agg[phase].values()), 12)}"
        lines.append(row)
    if len(agg) > top:
        lines.append(f"... {len(agg) - top} more phase(s)")
    return "\n".join(lines)


def profile_result(result: Any) -> str:
    """Full profile text for an ``SPMDResult``-like object (``metrics`` +
    ``clocks`` attributes): term table, then phase breakdown."""
    chunks = [format_profile(result.metrics, result.clocks)]
    if any(snap.terms for snap in result.metrics):
        chunks.append("")
        chunks.append(format_phase_table(result.metrics))
    return "\n".join(chunks)
