"""Zero-clock-charge phase spans.

A *span* marks a region of a rank's execution with a phase name —
``schedule:build``, ``pack``, ``wire``, ``unpack``, ``plan:execute`` —
without touching the logical clock.  :meth:`Process.span` pushes the name
onto the rank's span stack on entry and pops it on exit; everything the
rank does in between (trace events, cost-model charges) is attributed to
the innermost open span.

Two costs, two switches:

- the **stack** (a list of names) is always maintained — pushing and
  popping are plain list ops, free of logical time, and give every trace
  event and metrics term its ``phase`` label;
- the **log** (a list of :class:`SpanRecord`) is only kept when
  observability is enabled (``proc.spans is not None``), because a long
  run can open millions of spans and the Perfetto exporter is the only
  consumer.

Spans *never* charge the clock: a record's ``start``/``end`` are
read-only observations of ``proc.clock``, so enabling observability
cannot perturb any published table (CI guards this byte-for-byte).

This module never imports the virtual machine; it only duck-types the
process object (``.clock``, ``.rank``, ``._span_stack``, ``.spans``),
so the process layer can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpanRecord", "span_on", "current_phase", "phase_path"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span on one rank (logical-clock timestamps, seconds)."""

    name: str    # phase name, e.g. "pack"
    start: float  # proc.clock at entry
    end: float    # proc.clock at exit
    rank: int
    depth: int    # nesting depth at entry (0 = outermost)
    path: str     # "/".join of the stack including this span

    @property
    def duration(self) -> float:
        """Logical seconds spent inside the span (includes child spans)."""
        return self.end - self.start


class _SpanCtx:
    """Context manager behind :meth:`Process.span` — reentrant-safe
    because each ``with`` acquires a fresh instance."""

    __slots__ = ("_proc", "_name", "_t0", "_depth", "_path")

    def __init__(self, proc, name: str):
        self._proc = proc
        self._name = name

    def __enter__(self) -> "_SpanCtx":
        stack = self._proc._span_stack
        self._depth = len(stack)
        self._t0 = self._proc.clock
        stack.append(self._name)
        self._path = "/".join(stack)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._proc._span_stack
        # Tolerate a corrupted stack (an exception unwinding through
        # nested spans) rather than masking the original error.
        if stack and stack[-1] == self._name:
            stack.pop()
        elif self._name in stack:  # pragma: no cover - defensive
            del stack[len(stack) - 1 - stack[::-1].index(self._name)]
        log = self._proc.spans
        if log is not None:
            log.append(
                SpanRecord(
                    name=self._name,
                    start=self._t0,
                    end=self._proc.clock,
                    rank=self._proc.rank,
                    depth=self._depth,
                    path=self._path,
                )
            )


def span_on(proc, name: str) -> _SpanCtx:
    """Open a span named ``name`` on ``proc`` (used by ``Process.span``)."""
    return _SpanCtx(proc, name)


def current_phase(proc) -> str:
    """The innermost open span name on ``proc`` ("" outside any span)."""
    stack = proc._span_stack
    return stack[-1] if stack else ""


def phase_path(proc) -> str:
    """The full open-span path on ``proc`` ("" outside any span)."""
    return "/".join(proc._span_stack)
