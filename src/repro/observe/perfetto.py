"""Chrome/Perfetto ``trace.json`` export.

Turns one run's observability record — per-rank :class:`~repro.vmachine.
trace.TraceEvent` streams plus per-rank :class:`~repro.observe.spans.
SpanRecord` logs — into the Chrome trace-event JSON format that
https://ui.perfetto.dev (and ``chrome://tracing``) loads directly:

- one *track* per rank (``pid = rank``), named in a ``"M"`` metadata
  event;
- every closed span becomes a ``"X"`` *complete* duration event
  (``ts``/``dur`` in microseconds of logical time);
- every message becomes a *flow arrow*: a ``"s"`` (flow start) event at
  the sender's ``send`` trace event and a ``"f"`` (flow finish) at the
  receiver's matching ``recv``.  Endpoints are matched per
  ``(src, dst, wire-tag)`` channel in FIFO order — exactly the
  transport's delivery order guarantee — so arrows stay correct under
  wildcard receives and arrival-order (OVERLAP) completion.  Perfetto
  binds each flow terminator to the enclosing slice on its track, which
  is the ``wire`` span the communicator opens around every endpoint;
- non-message events (``fault:*``, ``plan:fuse``) become ``"i"``
  *instant* events so injected faults and fused sends are visible inline
  on the rank that observed them.

Timestamps are *logical* seconds scaled to microseconds; the exporter
never touches the machine, so exporting cannot perturb a run.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

__all__ = ["chrome_trace", "export_chrome_trace", "write_chrome_trace"]

#: logical seconds -> trace microseconds
_US = 1e6


def _track_metadata(nranks: int) -> list[dict]:
    events = []
    for r in range(nranks):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": r,
                "args": {"name": f"rank {r}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": r,
                "tid": 0,
                "args": {"name": f"vproc-{r}"},
            }
        )
    return events


def _span_events(spans: list[list[Any]]) -> list[dict]:
    events = []
    for per_rank in spans:
        for s in per_rank:
            events.append(
                {
                    "name": s.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": s.start * _US,
                    "dur": (s.end - s.start) * _US,
                    "pid": s.rank,
                    "tid": 0,
                    "args": {"path": s.path, "depth": s.depth},
                }
            )
    return events


def _message_events(traces: list[list[Any]]) -> list[dict]:
    """Flow arrows for matched send/recv pairs + instants for the rest.

    Matching walks each channel ``(src, dst, tag)`` in trace order on
    both endpoints; pairwise FIFO delivery makes the k-th send on a
    channel the k-th receive.  Unmatched endpoints (dropped messages,
    traces cut short) degrade to instants instead of dangling arrows.
    """
    events: list[dict] = []
    # Pass 1: enumerate sends per channel in send order, assigning ids.
    flow_ids: dict[tuple[int, int, int], deque[int]] = {}
    next_id = 1
    sends: list[tuple[Any, int]] = []  # (event, flow id)
    for per_rank in traces:
        for e in per_rank:
            if e.kind == "send":
                fid = next_id
                next_id += 1
                flow_ids.setdefault((e.rank, e.peer, e.tag), deque()).append(fid)
                sends.append((e, fid))
    for e, fid in sends:
        args = {"tag": e.tag, "nbytes": e.nbytes}
        phase = getattr(e, "phase", "")
        if phase:
            args["phase"] = phase
        events.append(
            {
                "name": f"msg to {e.peer}",
                "cat": "msg",
                "ph": "s",
                "id": fid,
                "ts": e.time * _US,
                "pid": e.rank,
                "tid": 0,
                "args": args,
            }
        )
    # Pass 2: receives consume their channel's ids in receive order.
    for per_rank in traces:
        for e in per_rank:
            if e.kind == "send":
                continue
            args = {"tag": e.tag, "nbytes": e.nbytes}
            phase = getattr(e, "phase", "")
            if phase:
                args["phase"] = phase
            if e.kind == "recv":
                if e.wait > 0:
                    args["wait_us"] = e.wait * _US
                queue = flow_ids.get((e.peer, e.rank, e.tag))
                if queue:
                    events.append(
                        {
                            "name": f"msg from {e.peer}",
                            "cat": "msg",
                            "ph": "f",
                            "bp": "e",
                            "id": queue.popleft(),
                            "ts": e.time * _US,
                            "pid": e.rank,
                            "tid": 0,
                            "args": args,
                        }
                    )
                    continue
            # Non-message kinds (fault:*, plan:fuse) and unmatched recvs.
            args["peer"] = e.peer
            events.append(
                {
                    "name": e.kind,
                    "cat": "event" if e.kind != "recv" else "msg",
                    "ph": "i",
                    "s": "t",
                    "ts": e.time * _US,
                    "pid": e.rank,
                    "tid": 0,
                    "args": args,
                }
            )
    return events


def chrome_trace(
    traces: list[list[Any]],
    spans: list[list[Any]] | None = None,
) -> dict:
    """Build the Chrome trace-event document as a Python dict.

    ``traces``: per-rank :class:`~repro.vmachine.trace.TraceEvent` lists;
    ``spans``: per-rank :class:`~repro.observe.spans.SpanRecord` lists
    (optional — a trace-only run still exports its message arrows).
    """
    nranks = max(len(traces), len(spans or ()))
    events = _track_metadata(nranks)
    if spans:
        events.extend(_span_events(spans))
    events.extend(_message_events(traces))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observe.perfetto (logical time)"},
    }


def export_chrome_trace(result: Any) -> dict:
    """:func:`chrome_trace` for an :class:`~repro.vmachine.machine.
    SPMDResult` (or anything with ``.traces`` and ``.spans``)."""
    return chrome_trace(result.traces, getattr(result, "spans", None))


def write_chrome_trace(path: str, result: Any) -> dict:
    """Export ``result`` to ``path`` as ``trace.json``.

    Returns the document that was serialized (handy for summaries).
    """
    doc = export_chrome_trace(result)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return doc
