"""Benchmark-trajectory regression detection.

:func:`compare_benchmarks` diffs two ``BENCH_*.json`` documents (the
ablation benchmarks' committed baselines vs. a fresh run) and reports
every logical-elapsed metric — any numeric ``*_ms`` field inside
``results`` — that *regressed* (grew) by more than a threshold
percentage, or that was *removed* from the regenerated document (a
vanished timing leaf is a failure, not a silent skip).  ``benchmarks/check_regression.py`` wraps this in a CLI that
exits nonzero when regressions are found, which is how CI turns "the
OVERLAP executor got slower" into a red build instead of a silently
drifting JSON.

Only growth is flagged: these are cost trajectories, so smaller is
better, and an improvement merely changes the baseline the next commit
should re-record.  Non-``_ms`` fields (message counts, byte totals,
booleans) are compared for *exact* drift separately — a changed message
count is a behaviour change, not a perf regression, and gets reported as
such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["Regression", "Drift", "compare_benchmarks", "iter_ms_fields"]


@dataclass(frozen=True)
class Regression:
    """One elapsed-time metric that grew past the threshold — or vanished.

    ``current is None`` means the ``*_ms`` leaf was *removed* from the
    regenerated trajectory: a guard that silently forgets a timing field
    it used to watch is no guard at all, so a removed leaf fails the
    check just like a grown one.
    """

    config: str     # key inside the document's "results" mapping
    field: str      # dotted path of the *_ms field
    baseline: float
    current: float | None

    @property
    def pct(self) -> float:
        if self.current is None:
            return float("inf")
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 0.0
        return (self.current - self.baseline) / self.baseline * 100.0

    def __str__(self) -> str:
        if self.current is None:
            return (
                f"{self.config}: {self.field} {self.baseline:.4f} ms -> "
                "MISSING (timing leaf removed from trajectory)"
            )
        return (
            f"{self.config}: {self.field} {self.baseline:.4f} -> "
            f"{self.current:.4f} ms (+{self.pct:.1f}%)"
        )


@dataclass(frozen=True)
class Drift:
    """A non-timing field whose value changed (behavioural drift)."""

    config: str
    field: str
    baseline: Any
    current: Any

    def __str__(self) -> str:
        return (
            f"{self.config}: {self.field} changed "
            f"{self.baseline!r} -> {self.current!r}"
        )


def iter_ms_fields(node: Any, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric ``*_ms`` leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if (
                isinstance(key, str)
                and key.endswith("_ms")
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                yield path, float(value)
            else:
                yield from iter_ms_fields(value, path)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from iter_ms_fields(value, f"{prefix}[{i}]")


def _iter_other_fields(node: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Non-``_ms`` scalar leaves, for exact-drift comparison."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                yield from _iter_other_fields(value, path)
            elif not (isinstance(key, str) and key.endswith("_ms")):
                # Percent fields are derived from the _ms fields; skip them
                # so one regression is not double-reported.
                if isinstance(key, str) and key.endswith("_pct"):
                    continue
                yield path, value
    elif isinstance(node, list):
        for i, value in enumerate(node):
            if isinstance(value, (dict, list)):
                yield from _iter_other_fields(value, f"{prefix}[{i}]")
            else:
                yield f"{prefix}[{i}]", value


def compare_benchmarks(
    baseline: dict,
    current: dict,
    threshold_pct: float = 10.0,
) -> tuple[list[Regression], list[Drift]]:
    """Diff two benchmark documents.

    Returns ``(regressions, drifts)``: ``regressions`` are ``*_ms``
    fields that grew by more than ``threshold_pct`` percent **or were
    removed** from the current document (``Regression.current is None``
    — a guard must not silently skip a timing leaf it used to watch);
    ``drifts`` are configurations, *added* timing leaves, or non-timing
    fields that appeared, vanished, or changed value exactly.
    """
    regressions: list[Regression] = []
    drifts: list[Drift] = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for config in sorted(set(base_results) | set(cur_results)):
        if config not in cur_results:
            drifts.append(Drift(config, "(config)", "present", "missing"))
            continue
        if config not in base_results:
            drifts.append(Drift(config, "(config)", "missing", "present"))
            continue
        base_ms = dict(iter_ms_fields(base_results[config]))
        cur_ms = dict(iter_ms_fields(cur_results[config]))
        for field in sorted(set(base_ms) | set(cur_ms)):
            if field not in cur_ms:
                # Removed timing leaf: fail, don't drift — otherwise a
                # regenerated trajectory can drop a watched metric and
                # the guard passes forever after.
                regressions.append(
                    Regression(config, field, base_ms[field], None)
                )
                continue
            if field not in base_ms:
                drifts.append(Drift(config, field, "missing", cur_ms[field]))
                continue
            b, c = base_ms[field], cur_ms[field]
            if c > b and (b == 0 or (c - b) / b * 100.0 > threshold_pct):
                regressions.append(Regression(config, field, b, c))
        base_other = dict(_iter_other_fields(base_results[config]))
        cur_other = dict(_iter_other_fields(cur_results[config]))
        for field in sorted(set(base_other) | set(cur_other)):
            b = base_other.get(field, "missing")
            c = cur_other.get(field, "missing")
            if b != c:
                drifts.append(Drift(config, field, b, c))
    return regressions, drifts
