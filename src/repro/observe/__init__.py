"""Phase-attributed observability: spans, cost-term metrics, exporters.

The package answers the question the paper's tables answer — *where did
the logical time go?* — for any run on the virtual machine:

:mod:`repro.observe.spans`
    Zero-clock-charge phase spans (:meth:`~repro.vmachine.process.
    Process.span`).  The span *stack* is always on (it labels trace
    events and metrics); the span *log* only accumulates when
    observability is enabled.

:mod:`repro.observe.metrics`
    Per-rank :class:`MetricsRegistry`: named counters (always on) plus
    opt-in cost-term attribution — every clock advance bucketed by
    ``(phase, term)`` with the exact floating-point delta, so the term
    sum reproduces the rank's clock.

:mod:`repro.observe.perfetto`
    Chrome/Perfetto ``trace.json`` export: one track per rank, spans as
    duration events, messages as flow arrows, faults/fusions as
    instants.

:mod:`repro.observe.report`
    Text profile rendering (``python -m repro profile``).

:mod:`repro.observe.regression`
    ``BENCH_*.json`` trajectory diffing behind
    ``benchmarks/check_regression.py``.

Enable per run with ``VirtualMachine(observe=True)`` /
``run_programs(observe=True)`` or globally with ``REPRO_OBSERVE=1``.
Observability is *zero-cost to the logical clocks*: published tables are
byte-identical with it on or off (guarded in CI).
"""

from repro.observe.metrics import COST_TERMS, MetricsRegistry, MetricsSnapshot
from repro.observe.perfetto import (
    chrome_trace,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.observe.regression import (
    Drift,
    Regression,
    compare_benchmarks,
    iter_ms_fields,
)
from repro.observe.report import format_phase_table, format_profile, profile_result
from repro.observe.spans import SpanRecord, current_phase, phase_path, span_on

__all__ = [
    "COST_TERMS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanRecord",
    "span_on",
    "current_phase",
    "phase_path",
    "chrome_trace",
    "export_chrome_trace",
    "write_chrome_trace",
    "format_profile",
    "format_phase_table",
    "profile_result",
    "Regression",
    "Drift",
    "compare_benchmarks",
    "iter_ms_fields",
]
