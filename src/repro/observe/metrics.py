"""Per-rank metrics: named counters plus cost-term attribution.

:class:`MetricsRegistry` is the one place a virtual processor's
observability state accumulates.  It carries two kinds of data:

**Counters** (``counters``: name → number) — the event tallies that used
to grow ad hoc inside ``proc.stats`` (``messages_sent``, ``faults_drop``,
``plan_fused_messages``, ``arena_hits``, ``rel_retransmits``, and the
coupling service's ``svc_*`` family — ``svc_rounds``, ``svc_admitted``,
``svc_oneway_errors``, ``svc_tenants_evicted``, ...).  They are always
on: bumping a counter is a dict update, free of logical time.

Every caching layer reports through one ``cache_*`` namespace:

================================ =====================================
``cache_schedule_{hits,misses,   :class:`~repro.core.cache.
evictions}``                     ScheduleCache` schedule store
``cache_plan_{hits,misses,       ScheduleCache fused-plan store
evictions,invalidations}``       (invalidation = member schedule
                                 evicted under it)
``cache_svc_{schedule_*,plan_*}`` :class:`~repro.service.cache.
                                 ServiceCache` cross-tenant layers
                                 (same suffixes, plus
                                 ``schedule_forced_rebuilds``)
``cache_program_{hits,misses}``  MoveProgram memoization on RunList
                                 halves (:func:`~repro.core.dataplane.
                                 compile_offsets`)
================================ =====================================

Cache mirroring is clock-free by construction — a counter bump never
advances logical time, so observed runs stay byte-identical with caching
enabled or disabled.

**Cost terms** (``terms``: (phase, term) → logical seconds) — every
logical-clock advance attributed to the analytical cost-model term that
caused it, bucketed by the enclosing :meth:`~repro.vmachine.process.
Process.span` phase.  Term attribution is *opt-in* (``attributing=True``,
enabled by ``VirtualMachine(observe=True)``): when enabled, the registry
records the **exact** floating-point delta applied to the clock, so the
sum of all term entries reproduces the rank's final logical clock to the
last bit (the ``profile`` CLI and the test suite assert a 1e-9 bound to
stay safe against future decompositions).

The term taxonomy (see MODEL.md §10):

========== ===========================================================
``alpha``   receiver-side latency: logical time spent blocked waiting
            for a message's arrival (``advance_to`` gaps)
``beta``    wire serialization: the ``nbytes / bandwidth`` share of the
            sender's injection occupancy
``occupancy`` per-message CPU overheads: ``o_send``'s share of
            injection, ``o_recv`` + drain on receive, and the fixed
            ``startup`` charge of schedule/collective operations
``per_element`` all per-element / per-byte local work: dereference,
            hashing, packing, unpacking, copying, flops
``rto``     reliability-layer retransmission-timer waits
``other``   untagged application charges (``proc.charge(x)``)
========== ===========================================================

Nothing in this module imports the virtual machine, so the process layer
can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "COST_TERMS",
    "MetricsRegistry",
    "MetricsSnapshot",
]

#: canonical cost-term names, in display order
COST_TERMS = ("alpha", "beta", "occupancy", "per_element", "rto", "other")


def _totals_by(terms: dict[tuple[str, str], float], index: int) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, seconds in terms.items():
        k = key[index]
        out[k] = out.get(k, 0.0) + seconds
    return out


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of a registry's state (or a diff of two states)."""

    counters: dict[str, float] = field(default_factory=dict)
    #: (phase, term) → logical seconds
    terms: dict[tuple[str, str], float] = field(default_factory=dict)

    def term_totals(self) -> dict[str, float]:
        """Logical seconds per cost term, summed over phases."""
        return _totals_by(self.terms, 1)

    def phase_totals(self) -> dict[str, float]:
        """Logical seconds per phase, summed over terms."""
        return _totals_by(self.terms, 0)

    def attributed_seconds(self) -> float:
        """Total attributed logical time (== the clock delta it covers)."""
        return sum(self.terms.values())

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``earlier``: per-key deltas, zeros dropped."""
        counters = {
            k: v - earlier.counters.get(k, 0)
            for k, v in self.counters.items()
            if v != earlier.counters.get(k, 0)
        }
        terms = {
            k: v - earlier.terms.get(k, 0.0)
            for k, v in self.terms.items()
            if v != earlier.terms.get(k, 0.0)
        }
        return MetricsSnapshot(counters=counters, terms=terms)


class MetricsRegistry:
    """One rank's counters and (optional) cost-term attribution.

    Thread-confinement contract: a registry belongs to exactly one
    virtual processor and is only mutated from that processor's thread
    (the same contract as the logical clock), so no locking is needed.
    """

    __slots__ = ("counters", "terms", "attributing")

    #: counters every process starts with (kept in insertion order so
    #: ``proc.stats`` renders identically to the historical dict)
    BASE_COUNTERS = (
        "messages_sent",
        "messages_received",
        "bytes_sent",
        "bytes_received",
    )

    def __init__(self, attributing: bool = False):
        self.counters: dict[str, float] = {k: 0 for k in self.BASE_COUNTERS}
        self.terms: dict[tuple[str, str], float] = {}
        #: record cost-term attribution for every clock advance?
        self.attributing = attributing

    # -- counters ----------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        """Bump counter ``name`` by ``amount`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    # -- cost-term attribution ---------------------------------------------

    def add_term(self, phase: str, term: str, seconds: float) -> None:
        """Attribute ``seconds`` of logical time to ``term`` inside
        ``phase``.  Callers pass the *exact* clock delta so the term sum
        reproduces the clock."""
        key = (phase, term)
        self.terms[key] = self.terms.get(key, 0.0) + seconds

    def term_totals(self) -> dict[str, float]:
        """Logical seconds per cost term, summed over phases."""
        return _totals_by(self.terms, 1)

    def phase_totals(self) -> dict[str, float]:
        """Logical seconds per phase, summed over terms."""
        return _totals_by(self.terms, 0)

    def attributed_seconds(self) -> float:
        """Sum of every term entry — equals the rank's logical clock when
        attribution was enabled for the whole run."""
        return sum(self.terms.values())

    # -- snapshot / diff ----------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of the current state."""
        return MetricsSnapshot(counters=dict(self.counters),
                               terms=dict(self.terms))

    def diff(self, earlier: MetricsSnapshot) -> MetricsSnapshot:
        """What happened since ``earlier``: per-key deltas, zeros dropped.

        The idiom benchmarks use to attribute one phase of a longer run::

            before = proc.metrics.snapshot()
            ...  # the phase under measurement
            delta = proc.metrics.diff(before)
        """
        counters = {
            k: v - earlier.counters.get(k, 0)
            for k, v in self.counters.items()
            if v != earlier.counters.get(k, 0)
        }
        terms = {
            k: v - earlier.terms.get(k, 0.0)
            for k, v in self.terms.items()
            if v != earlier.terms.get(k, 0.0)
        }
        return MetricsSnapshot(counters=counters, terms=terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self.counters)} counter(s), "
            f"{len(self.terms)} term bucket(s), "
            f"attributing={self.attributing})"
        )
